//! Sparse, paged data memory.

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Words per page (2¹² words = 32 KiB of 64-bit words).
const PAGE_WORDS: u64 = 1 << 12;
const PAGE_MASK: u64 = PAGE_WORDS - 1;
/// Translation-cache tag meaning "this way holds nothing". No real
/// page index can equal it: page indexes are `addr >> 12`, so they
/// never exceed `2⁵² - 1`. Using an impossible tag instead of a slot
/// sentinel keeps the hit path to a single tag compare.
const EMPTY_TAG: u64 = u64::MAX;

/// One page of memory. The fixed-size array type matters twice:
/// page-offset indexing (`addr & PAGE_MASK`, provably `< PAGE_WORDS`)
/// compiles with no inner bounds check, and storing pages *inline* in
/// the slot vector makes a cached access one load — base +
/// `slot · PAGE_WORDS + offset` — instead of a slot load feeding a
/// page-pointer load.
type Page = [u64; PAGE_WORDS as usize];

/// Multiplicative hasher for page indexes (the map key is always a
/// `u64`). Page indexes are small, dense integers; a SplitMix-style
/// mix spreads them across hashbrown's buckets and control bytes at a
/// fraction of SipHash's cost, which matters because the interpreters
/// take this path on every translation-cache miss.
#[derive(Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("page indexes hash via write_u64");
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        let mut h = x;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        self.0 = h;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Word-addressed, sparsely allocated data memory.
///
/// SLA data memory is a flat space of 2⁶⁴ 64-bit words, materialised in
/// pages on first *write*; reads of never-written locations return `0`
/// without allocating. This matches what trace-driven simulators need:
/// programs can scatter a stack at [`loopspec_asm::STACK_BASE`]
/// (`2³⁰`) and static data at `2¹⁶` without any contiguous allocation.
///
/// Internally the pages live in a dense slot vector; a `HashMap` only
/// translates page index → slot, and a two-way MRU translation cache in
/// front of it makes the hit path — the overwhelmingly common case for
/// loop-shaped workloads — a tag compare plus two indexed loads, small
/// enough to inline into the interpreter dispatch loops, where the hash
/// lookup never could. Two ways matter because call-heavy programs
/// alternate stack-frame traffic with static-data traffic: a one-entry
/// cache thrashes on exactly that pattern.
///
/// ```
/// use loopspec_cpu::Memory;
/// let mut m = Memory::new();
/// assert_eq!(m.read(12345), 0);     // untouched memory reads as zero
/// m.write(12345, 42);
/// assert_eq!(m.read(12345), 42);
/// assert_eq!(m.pages_allocated(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    /// Page index → slot in `store`.
    index: HashMap<u64, u32, BuildHasherDefault<PageHasher>>,
    /// Slot → page contents, pages inline (see [`Page`]).
    store: Vec<Page>,
    /// Slot → page index (the inverse of `index`, for serialization).
    ids: Vec<u64>,
    /// Most-recent translation `(page index, slot)`; tag [`EMPTY_TAG`]
    /// when empty. `Cell`s keep the read hit path on a `&self`
    /// signature.
    way0: Cell<(u64, u32)>,
    /// Second-most-recent translation.
    way1: Cell<(u64, u32)>,
    /// Telemetry: accesses answered by a cache way. Plain `Cell`
    /// counters (no atomics on the interpreter hot path); strictly
    /// out-of-band — never serialized, never compared.
    mru_hits: Cell<u64>,
    /// Telemetry: accesses that fell through to the page map.
    mru_misses: Cell<u64>,
}

impl Default for Memory {
    fn default() -> Self {
        Memory {
            index: HashMap::default(),
            store: Vec::new(),
            ids: Vec::new(),
            way0: Cell::new((EMPTY_TAG, 0)),
            way1: Cell::new((EMPTY_TAG, 0)),
            mru_hits: Cell::new(0),
            mru_misses: Cell::new(0),
        }
    }
}

impl Memory {
    /// Creates an empty memory (all zeros).
    pub fn new() -> Self {
        Self::default()
    }

    /// Translates `page` through the two cache ways, promoting a
    /// second-way hit to the front. Returns the page's slot.
    #[inline(always)]
    fn translate(&self, page: u64) -> Option<u32> {
        let (tag0, slot0) = self.way0.get();
        if page == tag0 {
            self.mru_hits.set(self.mru_hits.get() + 1);
            return Some(slot0);
        }
        let (tag1, slot1) = self.way1.get();
        if page == tag1 {
            self.way1.set((tag0, slot0));
            self.way0.set((tag1, slot1));
            self.mru_hits.set(self.mru_hits.get() + 1);
            return Some(slot1);
        }
        self.mru_misses.set(self.mru_misses.get() + 1);
        None
    }

    /// Installs a fresh translation in the MRU way, demoting way 0.
    #[inline(always)]
    fn install(&self, page: u64, slot: u32) {
        self.way1.set(self.way0.get());
        self.way0.set((page, slot));
    }

    /// Reads the word at `addr`; unwritten memory reads as `0`.
    #[inline(always)]
    pub fn read(&self, addr: u64) -> u64 {
        let page = addr / PAGE_WORDS;
        if let Some(slot) = self.translate(page) {
            return self.store[slot as usize][(addr & PAGE_MASK) as usize];
        }
        self.read_miss(addr)
    }

    fn read_miss(&self, addr: u64) -> u64 {
        let page = addr / PAGE_WORDS;
        match self.index.get(&page) {
            Some(&slot) => {
                self.install(page, slot);
                self.store[slot as usize][(addr & PAGE_MASK) as usize]
            }
            None => 0,
        }
    }

    /// Writes the word at `addr`, allocating its page if needed.
    #[inline(always)]
    pub fn write(&mut self, addr: u64, value: u64) {
        let page = addr / PAGE_WORDS;
        if let Some(slot) = self.translate(page) {
            self.store[slot as usize][(addr & PAGE_MASK) as usize] = value;
            return;
        }
        self.write_miss(addr, value);
    }

    fn write_miss(&mut self, addr: u64, value: u64) {
        let page = addr / PAGE_WORDS;
        let slot = match self.index.get(&page) {
            Some(&slot) => slot,
            None => {
                let slot = self.store.len() as u32;
                self.store.push([0u64; PAGE_WORDS as usize]);
                self.ids.push(page);
                self.index.insert(page, slot);
                slot
            }
        };
        self.install(page, slot);
        self.store[slot as usize][(addr & PAGE_MASK) as usize] = value;
    }

    /// Number of pages currently materialised.
    #[inline]
    pub fn pages_allocated(&self) -> usize {
        self.store.len()
    }

    /// The page index containing `addr`, for same-page comparisons.
    #[inline(always)]
    pub(crate) fn page_of(addr: u64) -> u64 {
        addr / PAGE_WORDS
    }

    /// Slot of `addr`'s page if it is materialised. A raw index probe:
    /// no MRU lookup, install, or telemetry — for callers (the decoded
    /// interpreter's same-page repeat fast path) that translate once
    /// and then index the page directly for a whole block. Skipping
    /// the MRU counters is fine because they are out-of-band (see
    /// [`Memory::take_mru_telemetry`]); values never depend on them.
    #[inline(always)]
    pub(crate) fn page_slot(&self, addr: u64) -> Option<u32> {
        self.index.get(&(addr / PAGE_WORDS)).copied()
    }

    /// Reads the word at `addr` through a slot obtained from
    /// [`Memory::page_slot`] for `addr`'s page.
    #[inline(always)]
    pub(crate) fn slot_word(&self, slot: u32, addr: u64) -> u64 {
        self.store[slot as usize][(addr & PAGE_MASK) as usize]
    }

    /// Writes the word at `addr` through a slot obtained from
    /// [`Memory::page_slot`] for `addr`'s page (already materialised
    /// by definition, so no allocation can be needed).
    #[inline(always)]
    pub(crate) fn slot_word_set(&mut self, slot: u32, addr: u64, value: u64) {
        self.store[slot as usize][(addr & PAGE_MASK) as usize] = value;
    }

    /// Telemetry: returns `(hits, misses)` of the MRU translation cache
    /// accumulated since the last take, and resets both to zero. The
    /// counters are out-of-band — excluded from [`Memory::save_state`]
    /// and from every equality the equivalence suites compare.
    pub fn take_mru_telemetry(&self) -> (u64, u64) {
        let taken = (self.mru_hits.get(), self.mru_misses.get());
        self.mru_hits.set(0);
        self.mru_misses.set(0);
        taken
    }

    /// Releases all pages, returning the memory to the all-zeros state.
    pub fn clear(&mut self) {
        self.index.clear();
        self.store.clear();
        self.ids.clear();
        self.way0.set((EMPTY_TAG, 0));
        self.way1.set((EMPTY_TAG, 0));
    }

    /// Serializes the materialised pages into `out` (part of the CPU's
    /// checkpoint section; see [`Cpu::save_state`](crate::Cpu::save_state)).
    ///
    /// Pages are written sorted by page index so equal memory contents
    /// always produce equal bytes, regardless of allocation order.
    pub fn save_state(&self, out: &mut loopspec_isa::snap::Enc) {
        let mut slots: Vec<u32> = (0..self.store.len() as u32).collect();
        slots.sort_unstable_by_key(|&slot| self.ids[slot as usize]);
        out.u64(slots.len() as u64);
        for slot in slots {
            out.u64(self.ids[slot as usize]);
            for &word in self.store[slot as usize].iter() {
                out.u64(word);
            }
        }
    }

    /// Restores the memory from bytes written by [`Memory::save_state`],
    /// replacing the current contents.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`](loopspec_isa::snap::SnapError) on
    /// truncated or corrupt input.
    pub fn load_state(
        &mut self,
        src: &mut loopspec_isa::snap::Dec<'_>,
    ) -> Result<(), loopspec_isa::snap::SnapError> {
        // Each page encodes as an 8-byte index plus PAGE_WORDS words —
        // sizing the count check to that keeps a corrupt count from
        // reserving capacity far beyond the input.
        let n = src.count_elems(8 * (1 + PAGE_WORDS as usize))?;
        self.clear();
        self.index.reserve(n);
        self.store.reserve(n);
        self.ids.reserve(n);
        for _ in 0..n {
            let id = src.u64()?;
            let mut page = [0u64; PAGE_WORDS as usize];
            for word in page.iter_mut() {
                *word = src.u64()?;
            }
            self.index.insert(id, self.store.len() as u32);
            self.store.push(page);
            self.ids.push(id);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = Memory::new();
        assert_eq!(m.read(0), 0);
        assert_eq!(m.read(u64::MAX), 0);
        assert_eq!(m.pages_allocated(), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut m = Memory::new();
        for addr in [0u64, 1, PAGE_WORDS - 1, PAGE_WORDS, 1 << 30, u64::MAX] {
            m.write(addr, addr ^ 0xdead_beef);
        }
        for addr in [0u64, 1, PAGE_WORDS - 1, PAGE_WORDS, 1 << 30, u64::MAX] {
            assert_eq!(m.read(addr), addr ^ 0xdead_beef);
        }
    }

    #[test]
    fn pages_are_shared_within_page_and_distinct_across() {
        let mut m = Memory::new();
        m.write(0, 1);
        m.write(PAGE_WORDS - 1, 2);
        assert_eq!(m.pages_allocated(), 1);
        m.write(PAGE_WORDS, 3);
        assert_eq!(m.pages_allocated(), 2);
    }

    #[test]
    fn reads_do_not_allocate() {
        let mut m = Memory::new();
        let _ = m.read(999_999);
        assert_eq!(m.pages_allocated(), 0);
        m.write(999_999, 7);
        assert_eq!(m.pages_allocated(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut m = Memory::new();
        m.write(5, 5);
        m.clear();
        assert_eq!(m.read(5), 0);
        assert_eq!(m.pages_allocated(), 0);
    }

    #[test]
    fn overwrite_takes_latest() {
        let mut m = Memory::new();
        m.write(42, 1);
        m.write(42, 2);
        assert_eq!(m.read(42), 2);
    }

    #[test]
    fn cache_stays_coherent_across_interleaved_pages() {
        // Alternate between three pages so accesses rotate through both
        // cache ways and the miss path, then re-read everything.
        let mut m = Memory::new();
        for i in 0..64u64 {
            m.write(i, i + 1);
            m.write((1 << 20) + i, i + 50);
            m.write((1 << 30) + i, i + 100);
        }
        for i in 0..64u64 {
            assert_eq!(m.read(i), i + 1);
            assert_eq!(m.read((1 << 20) + i), i + 50);
            assert_eq!(m.read((1 << 30) + i), i + 100);
        }
    }

    #[test]
    fn mru_telemetry_counts_and_resets() {
        let mut m = Memory::new();
        m.write(0, 1); // miss (cold), installs
        m.write(1, 2); // hit (way 0)
        let _ = m.read(2); // hit
        let _ = m.read(1 << 30); // miss, unallocated
        let (hits, misses) = m.take_mru_telemetry();
        assert_eq!((hits, misses), (2, 2));
        assert_eq!(m.take_mru_telemetry(), (0, 0), "take resets");
    }

    #[test]
    fn snapshot_roundtrip_is_order_independent() {
        let mut a = Memory::new();
        a.write(1 << 30, 7); // high page first
        a.write(0, 9);
        let mut b = Memory::new();
        b.write(0, 9); // low page first
        b.write(1 << 30, 7);

        let enc_of = |m: &Memory| {
            let mut enc = loopspec_isa::snap::Enc::new();
            m.save_state(&mut enc);
            enc.into_bytes()
        };
        assert_eq!(enc_of(&a), enc_of(&b), "bytes sort by page index");

        let bytes = enc_of(&a);
        let mut c = Memory::new();
        c.write(12345, 1); // stale contents must be replaced
        let mut dec = loopspec_isa::snap::Dec::new(&bytes);
        c.load_state(&mut dec).unwrap();
        assert_eq!(c.read(1 << 30), 7);
        assert_eq!(c.read(0), 9);
        assert_eq!(c.read(12345), 0);
        assert_eq!(c.pages_allocated(), 2);
    }
}
