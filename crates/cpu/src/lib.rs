//! # loopspec-cpu — functional SLA simulator with instrumentation hooks
//!
//! This crate is the execution substrate of the reproduction: a functional
//! (instruction-at-a-time) interpreter for [`loopspec_isa`] programs with
//! an *ATOM-style* instrumentation interface. In Tubella & González
//! (HPCA 1998) the SPEC95 binaries were instrumented with ATOM [Srivastava
//! & Eustace 1994], which invokes analysis callbacks on every executed
//! instruction; the [`Tracer`] trait is exactly that callback surface —
//! per retired instruction it reports the PC, the control-flow outcome
//! (kind, taken, target) and the architectural register/memory reads and
//! writes.
//!
//! Everything downstream (the loop detector in `loopspec-core`, the
//! multithreading engine in `loopspec-mt`, the data-speculation profiler
//! in `loopspec-dataspec`) consumes only [`InstrEvent`]s, never internal
//! CPU state.
//!
//! ## Example
//!
//! ```
//! use loopspec_asm::ProgramBuilder;
//! use loopspec_cpu::{Cpu, CountingTracer, RunLimits};
//!
//! let mut b = ProgramBuilder::new();
//! b.counted_loop(10, |b, _| b.work(4));
//! let program = b.finish()?;
//!
//! let mut tracer = CountingTracer::default();
//! let summary = Cpu::new().run(&program, &mut tracer, RunLimits::default())?;
//! assert!(summary.halted());
//! assert_eq!(summary.retired, tracer.retired);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod cpu;
mod decoded;
mod kernel;
mod mem;
mod telemetry;
mod tracer;

pub use cpu::{Completion, Cpu, CpuError, RunLimits, RunSummary};
pub use decoded::DecodedProgram;
pub use kernel::KernelMode;
pub use mem::Memory;
pub use telemetry::{DecodedTelemetry, FUSED_SHAPES, FUSED_SHAPE_NAMES};
pub use tracer::{
    ArchReg, ControlOutcome, CountingTracer, Demand, InstrEvent, MemAccess, NullTracer, RegRead,
    RegWrite, Tracer,
};
