//! The pre-decoded (threaded-code) dispatch loop.
//!
//! [`DecodedProgram`] pairs a [`Program`]'s entry point with its
//! [`DecodedImage`] (see [`loopspec_isa::DecodedImage`] for what the
//! decode and fusion passes precompute). [`Cpu::run_decoded`] /
//! [`Cpu::resume_decoded`] execute that image with semantics
//! **bit-identical** to the legacy [`Cpu::run`] / [`Cpu::resume`]:
//!
//! * the same [`InstrEvent`] sequence reaches the tracer, one event
//!   per retired instruction, fused or not (modulo fields the tracer's
//!   [`Demand`] mask waives);
//! * the same faults surface at the same retirement counts;
//! * every pause — fuel exhaustion, halt, fault — lands at an
//!   instruction boundary, so [`Cpu::save_state`] emits the same bytes
//!   the legacy interpreter would. There is no mid-block cursor to
//!   persist: the pc alone locates the resume point, and a resumed run
//!   re-enters the middle of a fused run via the per-pc suffix
//!   run-length table.
//!
//! What the decoded path *saves* per retirement: the fetch through
//! `Option`, the `control_kind()` reclassification, the `reg_use()`
//! walk (pre-computed, and skipped outright when un-demanded), the
//! immediate sign-extension, and — inside straight-line runs — the
//! per-instruction fuel, halt and pc checks, which hoist to one check
//! per run.

use std::time::Instant;

use loopspec_asm::Program;
use loopspec_isa::{
    Addr, AluOp, ControlKind, DecodedImage, DecodedOp, FAluOp, FReg, FUnOp, FlatCode, FlatOp, Reg,
    RegUse,
};

use crate::cpu::{Completion, Cpu, CpuError, RunLimits, RunSummary};
use crate::mem::Memory;
use crate::tracer::{
    ArchReg, ControlOutcome, Demand, InstrEvent, MemAccess, RegRead, RegWrite, Tracer,
};

/// The fall-through successor of a *fetched* pc. `Addr::next()` folds a
/// checked-overflow panic into the caller — a side effect that blocks
/// dead-code elimination of otherwise unused event fields — but a
/// fetched pc is `< len`, so the wrapping successor is identical.
#[inline(always)]
fn succ(pc: Addr) -> Addr {
    Addr::new(pc.index().wrapping_add(1))
}

/// [`AluOp`]s in [`FlatCode`] register-immediate block order, padded to
/// 16 entries so indexing by a `sub` nibble (`sub & 15`, `sub >> 4`)
/// needs no bounds check.
const RI_OPS: [AluOp; 16] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Sar,
    AluOp::SltS,
    AluOp::SltU,
    AluOp::Add,
    AluOp::Add,
    AluOp::Add,
];

/// A [`Program`] lowered to threaded code: the input of
/// [`Cpu::run_decoded`].
///
/// Build once per program (an `O(code size)` pass), reuse across runs,
/// resumes and CPUs. The image keeps a copy of the source
/// instructions, so [`matches`](DecodedProgram::matches) can verify it
/// still corresponds to a given program before executing.
///
/// ```
/// use loopspec_asm::ProgramBuilder;
/// use loopspec_cpu::{Cpu, DecodedProgram, NullTracer, RunLimits};
///
/// let mut b = ProgramBuilder::new();
/// b.counted_loop(10, |b, _| b.work(4));
/// let program = b.finish()?;
///
/// let decoded = DecodedProgram::new(&program);
/// assert!(decoded.matches(&program));
/// let summary = Cpu::new().run_decoded(&decoded, &mut NullTracer, RunLimits::default())?;
/// assert!(summary.halted());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    image: DecodedImage,
    entry: Addr,
}

impl DecodedProgram {
    /// Decodes `program` (including the superinstruction fusion pass).
    pub fn new(program: &Program) -> DecodedProgram {
        DecodedProgram {
            image: DecodedImage::build(program.code()),
            entry: program.entry(),
        }
    }

    /// The decoded image.
    pub fn image(&self) -> &DecodedImage {
        &self.image
    }

    /// The program's entry point.
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// `true` when this decoding was built from exactly `program`
    /// (same code words, same entry point).
    pub fn matches(&self, program: &Program) -> bool {
        self.entry == program.entry() && self.image.instrs() == program.code()
    }

    /// Number of fused superinstructions in the image.
    pub fn fused_pairs(&self) -> usize {
        self.image.fused_pairs()
    }
}

impl Cpu {
    /// Runs a pre-decoded program from its entry point — the
    /// threaded-code counterpart of [`Cpu::run`], observably identical
    /// to it (events, faults, architectural state, snapshot bytes).
    ///
    /// # Errors
    ///
    /// Exactly as [`Cpu::run`].
    pub fn run_decoded<T: Tracer>(
        &mut self,
        program: &DecodedProgram,
        tracer: &mut T,
        limits: RunLimits,
    ) -> Result<RunSummary, CpuError> {
        self.pc = program.entry();
        self.resume_decoded(program, tracer, limits)
    }

    /// Continues a pre-decoded run from the current program counter —
    /// the threaded-code counterpart of [`Cpu::resume`].
    ///
    /// Resumption composes freely with the legacy interpreter: a run
    /// paused by either can be continued by the other, because every
    /// pause lands at an instruction boundary where the pc alone
    /// locates the next dispatch (a budget cut inside a fused run
    /// simply shortens the run via the suffix run-length table).
    ///
    /// # Errors
    ///
    /// Exactly as [`Cpu::resume`].
    pub fn resume_decoded<T: Tracer>(
        &mut self,
        program: &DecodedProgram,
        tracer: &mut T,
        limits: RunLimits,
    ) -> Result<RunSummary, CpuError> {
        let started = Instant::now();
        let img = program.image();
        let demand = tracer.demand();
        let start_retired = self.retired;
        let budget = limits.max_instrs;
        let len = img.len();

        while self.retired - start_retired < budget {
            let pc = self.pc;
            let mut pcu = pc.index() as usize;
            if pcu >= len {
                return Err(CpuError::PcOutOfRange { pc });
            }
            let mut fuel = budget - (self.retired - start_retired);

            // One packed-metadata load classifies the dispatch:
            // straight-line superblock, fused pair, or single step.
            let mut meta = img.meta(pcu);

            // Straight-line superblock: retire the whole control-free
            // run with a single fuel/pc check. Clamping to the
            // remaining fuel keeps every pause at an instruction
            // boundary. Runs of one (value ops squeezed between
            // branches) take this path too: it is the only dispatch
            // that jumps straight off the flat opcode.
            let run = ((meta >> 1) as u64).min(fuel) as usize;
            if run >= 1 {
                self.telem.record_superblock(run as u64);
                if run as u32 == meta >> 1 {
                    // Full suffix: every superinstruction fits the
                    // window by construction, so the checked walk's
                    // guards would be dead weight.
                    self.exec_run_full(img, pcu, run, tracer, demand, limits.max_pages)?;
                } else {
                    self.exec_run(img, pcu, run, tracer, demand, limits.max_pages)?;
                }
                // Run→terminator glue: an *unclamped* run ends exactly
                // at its terminator (a control op or fused-pair head —
                // run length 0 by construction), so classify that next
                // dispatch right here instead of repeating the loop-top
                // bookkeeping. A fuel-clamped run, an exhausted budget,
                // or a run falling off the end of code goes back to the
                // loop top, which owns those exits.
                fuel -= run as u64;
                pcu += run;
                if run as u32 != meta >> 1 || fuel == 0 || pcu >= len {
                    continue;
                }
                meta = img.meta(pcu);
            }

            // Fused value→branch superinstruction (the counted-loop
            // back edge): two retirements, one dispatch.
            if meta & 1 != 0 && fuel >= 2 {
                self.telem.fused_branch_pairs += 1;
                self.exec_straight(img, pcu, tracer, demand, limits.max_pages)?;
                let DecodedOp::Branch {
                    cond,
                    ra,
                    rb,
                    target,
                } = img.op(pcu + 1)
                else {
                    unreachable!("fused pair tail must be a branch")
                };
                self.exec_branch(img, pcu + 1, cond, ra, rb, target, tracer, demand);
                continue;
            }

            if self.step(img, pcu, fuel, tracer, demand, limits.max_pages)? {
                return Ok(RunSummary {
                    retired: self.retired - start_retired,
                    completion: Completion::Halted,
                    elapsed: started.elapsed(),
                });
            }
        }

        Ok(RunSummary {
            retired: self.retired - start_retired,
            completion: Completion::OutOfFuel,
            elapsed: started.elapsed(),
        })
    }

    /// [`Cpu::exec_run`] for a run that is the *entire* straight-line
    /// suffix at `pcu` (not clamped by fuel). The fusion pass only
    /// plants a superinstruction whose span fits the suffix it was
    /// built from, so on this path every fused op is known to fit the
    /// window: the checked walk's window guards and its unfused
    /// re-fetch fallback are dead weight and this walk omits them.
    #[inline(always)]
    fn exec_run_full<T: Tracer>(
        &mut self,
        img: &DecodedImage,
        pcu: usize,
        n: usize,
        tracer: &mut T,
        demand: Demand,
        max_pages: usize,
    ) -> Result<(), CpuError> {
        let fused = &img.flat2()[pcu..pcu + n];
        let instrs = &img.instrs()[pcu..pcu + n];
        let uses = &img.uses()[pcu..pcu + n];
        let seq0 = self.retired;
        let mut i = 0;
        while i < n {
            let f = fused[i];
            if f.code.fuses_two() {
                self.telem.record_fused(f.code);
                let r = if f.code.is_rep() {
                    let k = f.sub as usize;
                    // Literal `store` flags keep the forced element
                    // opcode a constant inside each instantiation.
                    let r = if f.code == FlatCode::StRep {
                        self.exec_rep_mem(
                            true,
                            img,
                            pcu + i,
                            k,
                            seq0 + i as u64,
                            tracer,
                            demand,
                            max_pages,
                        )
                    } else {
                        self.exec_rep_mem(
                            false,
                            img,
                            pcu + i,
                            k,
                            seq0 + i as u64,
                            tracer,
                            demand,
                            max_pages,
                        )
                    };
                    if r.is_ok() {
                        i += k;
                        continue;
                    }
                    r
                } else {
                    let r = self.exec_flat_pair(
                        f,
                        instrs[i],
                        &uses[i],
                        instrs[i + 1],
                        &uses[i + 1],
                        pcu + i,
                        seq0 + i as u64,
                        tracer,
                        demand,
                        max_pages,
                    );
                    if r.is_ok() {
                        i += 2;
                        continue;
                    }
                    r
                };
                // Element `j` faulted; it did retire (the page-limit
                // check runs post-retirement).
                let (e, j) = r.unwrap_err();
                self.retired = seq0 + (i + j) as u64 + 1;
                self.pc = Addr::new((pcu + i + j) as u32);
                return Err(e);
            }
            let pc = Addr::new((pcu + i) as u32);
            if let Err(e) = self.exec_flat_op(
                f,
                instrs[i],
                &uses[i],
                pc,
                seq0 + i as u64,
                tracer,
                demand,
                max_pages,
            ) {
                self.retired = seq0 + i as u64 + 1;
                self.pc = pc;
                return Err(e);
            }
            i += 1;
        }
        self.retired = seq0 + n as u64;
        self.pc = Addr::new((pcu + n) as u32);
        Ok(())
    }

    /// Executes `n` straight-line ops starting at `pcu` (the caller
    /// guarantees they are control-free and in bounds), then advances
    /// the pc past them. On a fault the pc is left at the faulting
    /// instruction, as the legacy interpreter does.
    ///
    /// This is the *windowed* walk for fuel-clamped runs: a
    /// superinstruction cut off by the window tail re-fetches its
    /// unfused form from `flat`. Full runs take
    /// [`Cpu::exec_run_full`], which drops those guards.
    ///
    /// Inlined into the dispatcher: every straight-line op — including
    /// runs of one — executes from here, so the call boundary would be
    /// pure per-run overhead.
    #[inline(always)]
    fn exec_run<T: Tracer>(
        &mut self,
        img: &DecodedImage,
        pcu: usize,
        n: usize,
        tracer: &mut T,
        demand: Demand,
        max_pages: usize,
    ) -> Result<(), CpuError> {
        // Slice once up front: the per-op loop then walks the image
        // arrays with no further bounds checks (all the slices have
        // length exactly `n`, which the optimizer can see).
        let fused = &img.flat2()[pcu..pcu + n];
        let instrs = &img.instrs()[pcu..pcu + n];
        let uses = &img.uses()[pcu..pcu + n];
        // Keep the retirement counter in a register across the run:
        // each op takes its sequence number as an argument instead of
        // bumping `self.retired` through memory (a serial
        // load→inc→store chain the whole loop would wait on).
        let seq0 = self.retired;
        let mut i = 0;
        while i < n {
            // Greedy superinstruction walk: dispatch the fused stream
            // when the fuel window still covers every element, the
            // plain stream otherwise. Unfused pcs execute straight
            // from the fused stream (the two streams coincide there);
            // only a superinstruction head cut off by the window tail
            // re-fetches its unfused form from `flat`.
            let mut f = fused[i];
            if f.code.fuses_two() {
                if f.code.is_rep() {
                    let k = f.sub as usize;
                    if i + k <= n {
                        self.telem.record_fused(f.code);
                        let r = if f.code == FlatCode::StRep {
                            self.exec_rep_mem(
                                true,
                                img,
                                pcu + i,
                                k,
                                seq0 + i as u64,
                                tracer,
                                demand,
                                max_pages,
                            )
                        } else {
                            self.exec_rep_mem(
                                false,
                                img,
                                pcu + i,
                                k,
                                seq0 + i as u64,
                                tracer,
                                demand,
                                max_pages,
                            )
                        };
                        match r {
                            Ok(()) => {
                                i += k;
                                continue;
                            }
                            Err((e, j)) => {
                                // Element `j` faulted; it did retire
                                // (the page-limit check runs
                                // post-retirement).
                                self.retired = seq0 + (i + j) as u64 + 1;
                                self.pc = Addr::new((pcu + i + j) as u32);
                                return Err(e);
                            }
                        }
                    }
                } else if i + 1 < n {
                    self.telem.record_fused(f.code);
                    match self.exec_flat_pair(
                        f,
                        instrs[i],
                        &uses[i],
                        instrs[i + 1],
                        &uses[i + 1],
                        pcu + i,
                        seq0 + i as u64,
                        tracer,
                        demand,
                        max_pages,
                    ) {
                        Ok(()) => {
                            i += 2;
                            continue;
                        }
                        Err((e, k)) => {
                            // Sub-op `k` faulted; it did retire (the
                            // page-limit check runs post-retirement).
                            self.retired = seq0 + (i + k) as u64 + 1;
                            self.pc = Addr::new((pcu + i + k) as u32);
                            return Err(e);
                        }
                    }
                }
                f = img.flat()[pcu + i];
            }
            let pc = Addr::new((pcu + i) as u32);
            if let Err(e) = self.exec_flat_op(
                f,
                instrs[i],
                &uses[i],
                pc,
                seq0 + i as u64,
                tracer,
                demand,
                max_pages,
            ) {
                // The faulting op did retire (the page-limit check runs
                // post-retirement, like the legacy interpreter's).
                self.retired = seq0 + i as u64 + 1;
                self.pc = pc;
                return Err(e);
            }
            i += 1;
        }
        self.retired = seq0 + n as u64;
        self.pc = Addr::new((pcu + n) as u32);
        Ok(())
    }

    /// Retires the two architectural instructions packed into the
    /// two-op superinstruction `f` (whose head sits at absolute index
    /// `at`). Each half goes through [`Cpu::exec_flat_op`] with a
    /// *constant* opcode, so the inner dispatch match constant-folds
    /// away and the half's semantics — event layout, zero-register
    /// guard, page-limit fault point — are the unfused ones by
    /// construction; the pair saves the second jump-table hop and the
    /// second round of loop overhead.
    ///
    /// On a fault, `Err((error, k))` names the faulting half (`k` is 0
    /// or 1) so the caller can place the pc and retirement count at
    /// the exact instruction, as the unfused path would.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn exec_flat_pair<T: Tracer>(
        &mut self,
        f: FlatOp,
        instr0: loopspec_isa::Instruction,
        u0: &RegUse,
        instr1: loopspec_isa::Instruction,
        u1: &RegUse,
        at: usize,
        seq: u64,
        tracer: &mut T,
        demand: Demand,
        max_pages: usize,
    ) -> Result<(), (CpuError, usize)> {
        use FlatCode::*;
        // The packed immediates: two sign-extended i32 halves
        // (low = first op's), except LiAdd, which keeps the load
        // constant full-width in `imm`.
        let lo = f.imm as u32 as i32 as i64 as u64;
        let hi = (f.imm >> 32) as u32 as i32 as i64 as u64;
        let op = |code, a, b, imm| FlatOp {
            code,
            a,
            b,
            c: 0,
            d: 0,
            sub: 0,
            imm,
        };
        macro_rules! two_first {
            ($first:expr) => {
                self.exec_flat_op(
                    $first,
                    instr0,
                    u0,
                    Addr::new(at as u32),
                    seq,
                    tracer,
                    demand,
                    max_pages,
                )
                .map_err(|e| (e, 0))
            };
        }
        macro_rules! two_second {
            ($second:expr) => {
                self.exec_flat_op(
                    $second,
                    instr1,
                    u1,
                    Addr::new((at + 1) as u32),
                    seq + 1,
                    tracer,
                    demand,
                    max_pages,
                )
                .map_err(|e| (e, 1))
            };
        }
        macro_rules! two {
            ($first:expr, $second:expr) => {{
                two_first!($first)?;
                two_second!($second)
            }};
        }
        match f.code {
            LiAdd => two!(
                op(Li, f.a, 0, f.imm),
                FlatOp {
                    code: AddRR,
                    a: f.b,
                    b: f.c,
                    c: f.d,
                    d: 0,
                    sub: 0,
                    imm: 0,
                }
            ),
            MulAnd => two!(op(MulRI, f.a, f.b, lo), op(AndRI, f.c, f.d, hi)),
            LdAdd => two!(op(Ld, f.a, f.b, lo), op(AddRI, f.c, f.d, hi)),
            LdLd => two!(op(Ld, f.a, f.b, lo), op(Ld, f.c, f.d, hi)),
            ShlShr => two!(op(ShlRI, f.a, f.b, lo), op(ShrRI, f.c, f.d, hi)),
            AddXor => two!(op(AddRI, f.a, f.b, lo), op(XorRI, f.c, f.d, hi)),
            StSt => two!(op(St, f.a, f.b, lo), op(St, f.c, f.d, hi)),
            StLi => two!(op(St, f.a, f.b, lo), op(Li, f.c, 0, hi)),
            AddLi => two!(op(AddRI, f.a, f.b, lo), op(Li, f.c, 0, hi)),
            LiLd => two!(op(Li, f.a, 0, lo), op(Ld, f.c, f.d, hi)),
            AddSt => two!(op(AddRI, f.a, f.b, lo), op(St, f.c, f.d, hi)),
            LdLi => two!(op(Ld, f.a, f.b, lo), op(Li, f.c, 0, hi)),
            // Generic shapes: the ALU sub-op(s) come out of the packed
            // `sub` nibbles at runtime via [`Cpu::exec_alu_ri_dyn`]
            // rather than cloning the full 60-arm dispatch per half.
            AluAlu => {
                self.exec_alu_ri_dyn(
                    RI_OPS[(f.sub & 15) as usize],
                    f,
                    false,
                    lo,
                    instr0,
                    u0,
                    at,
                    seq,
                    tracer,
                    demand,
                );
                self.exec_alu_ri_dyn(
                    RI_OPS[(f.sub >> 4) as usize],
                    f,
                    true,
                    hi,
                    instr1,
                    u1,
                    at + 1,
                    seq + 1,
                    tracer,
                    demand,
                );
                Ok(())
            }
            AluLi => {
                self.exec_alu_ri_dyn(
                    RI_OPS[(f.sub & 15) as usize],
                    f,
                    false,
                    lo,
                    instr0,
                    u0,
                    at,
                    seq,
                    tracer,
                    demand,
                );
                two_second!(op(Li, f.c, 0, hi))
            }
            AluLd => {
                self.exec_alu_ri_dyn(
                    RI_OPS[(f.sub & 15) as usize],
                    f,
                    false,
                    lo,
                    instr0,
                    u0,
                    at,
                    seq,
                    tracer,
                    demand,
                );
                two_second!(op(Ld, f.c, f.d, hi))
            }
            LiAlu => {
                two_first!(op(Li, f.a, 0, lo))?;
                self.exec_alu_ri_dyn(
                    RI_OPS[(f.sub >> 4) as usize],
                    f,
                    true,
                    hi,
                    instr1,
                    u1,
                    at + 1,
                    seq + 1,
                    tracer,
                    demand,
                );
                Ok(())
            }
            _ => unreachable!("exec_flat_pair dispatched on a single-op code"),
        }
    }

    /// Retires a same-code `St`/`Ld` block ([`FlatCode::StRep`] /
    /// [`FlatCode::LdRep`]) in one dispatch: the count rides in the
    /// superinstruction, each element's registers and immediate are
    /// re-read from the unfused `flat` stream. Both call sites pass
    /// `store` as a literal, so the forced opcode below is a constant
    /// and each element executes the plain `St`/`Ld` arm of
    /// [`Cpu::exec_flat_op`] — semantics, events, and fault points are
    /// the unfused ones by construction.
    ///
    /// On a fault, `Err((error, j))` names the faulting element so the
    /// caller can place the pc and retirement count exactly.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn exec_rep_mem<T: Tracer>(
        &mut self,
        store: bool,
        img: &DecodedImage,
        at: usize,
        k: usize,
        seq: u64,
        tracer: &mut T,
        demand: Demand,
        max_pages: usize,
    ) -> Result<(), (CpuError, usize)> {
        let elems = &img.flat()[at..at + k];
        let instrs = &img.instrs()[at..at + k];
        let uses = &img.uses()[at..at + k];
        let code = if store { FlatCode::St } else { FlatCode::Ld };

        // Same-page fast path: repeat blocks overwhelmingly stride one
        // array window, so once element 0 has resolved its page, later
        // elements whose addresses stay on that page are serviced
        // straight from its slot, skipping per-element translation.
        // Element 0 always runs through `exec_flat_op` so page
        // materialisation, the memory limit, and fault placement stay
        // exactly the unfused ones — same-page elements past the first
        // can never allocate. Each element's address is computed from
        // the *current* register file right where the generic walk
        // would, so pointer-chasing load blocks (an earlier element's
        // destination feeding a later base) need no special casing; the
        // first off-page address drops the remaining elements onto the
        // generic walk. Events remain per-element and demand-gated, so
        // traces and snapshots are bit-identical; only the out-of-band
        // MRU telemetry sees fewer probes.
        let first = self.regs[(elems[0].b & 31) as usize].wrapping_add(elems[0].imm);
        self.exec_flat_op(
            FlatOp { code, ..elems[0] },
            instrs[0],
            &uses[0],
            Addr::new(at as u32),
            seq,
            tracer,
            demand,
            max_pages,
        )
        .map_err(|e| (e, 0))?;
        let page = Memory::page_of(first);
        // After element 0 a store block's page is materialised; a
        // load block's may still be absent (its words read as 0).
        let slot = self.mem.page_slot(first);
        for j in 1..k {
            let e = elems[j];
            let addr = self.regs[(e.b & 31) as usize].wrapping_add(e.imm);
            if Memory::page_of(addr) != page {
                // Off the page: the rest of the block walks the
                // generic path (which re-resolves every address).
                for jj in j..k {
                    self.exec_flat_op(
                        FlatOp { code, ..elems[jj] },
                        instrs[jj],
                        &uses[jj],
                        Addr::new((at + jj) as u32),
                        seq + jj as u64,
                        tracer,
                        demand,
                        max_pages,
                    )
                    .map_err(|e| (e, jj))?;
                }
                return Ok(());
            }
            let pc = Addr::new((at + j) as u32);
            let mut ev = InstrEvent {
                seq: seq + j as u64,
                pc,
                instr: instrs[j],
                control: ControlOutcome {
                    kind: ControlKind::None,
                    taken: false,
                    target: succ(pc),
                },
                reads: [None; 5],
                write: None,
                mem_read: None,
                mem_write: None,
            };
            if demand.reads() {
                self.capture_reads_from(&uses[j], &mut ev);
            }
            if store {
                let v = self.regs[(e.a & 31) as usize];
                self.mem
                    .slot_word_set(slot.expect("element 0's store materialised it"), addr, v);
                if demand.mem() {
                    ev.mem_write = Some(MemAccess { addr, value: v });
                }
            } else {
                let v = match slot {
                    Some(s) => self.mem.slot_word(s, addr),
                    None => 0,
                };
                if demand.mem() {
                    ev.mem_read = Some(MemAccess { addr, value: v });
                }
                self.write_int_flat(e.a, v, &mut ev, demand);
            }
            tracer.on_retire(&ev);
        }
        Ok(())
    }

    /// Retires one register-immediate ALU half of a generic fused pair
    /// ([`FlatCode::AluAlu`] and friends), with the sub-op supplied at
    /// runtime from the pair's packed `sub` byte. Mirrors the
    /// [`Cpu::exec_flat_op`] RI path exactly — same event skeleton,
    /// demand-gated read capture, zero-register guard — minus the store
    /// bookkeeping an ALU op can never need. `second` selects the
    /// pair's c/d register pair over a/b.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn exec_alu_ri_dyn<T: Tracer>(
        &mut self,
        op: AluOp,
        f: FlatOp,
        second: bool,
        imm: u64,
        instr: loopspec_isa::Instruction,
        u: &RegUse,
        at: usize,
        seq: u64,
        tracer: &mut T,
        demand: Demand,
    ) {
        let (dst, src) = if second { (f.c, f.d) } else { (f.a, f.b) };
        let pc = Addr::new(at as u32);
        let mut ev = InstrEvent {
            seq,
            pc,
            instr,
            control: ControlOutcome {
                kind: ControlKind::None,
                taken: false,
                target: succ(pc),
            },
            reads: [None; 5],
            write: None,
            mem_read: None,
            mem_write: None,
        };
        if demand.reads() {
            self.capture_reads_from(u, &mut ev);
        }
        let v = op.eval(self.regs[(src & 31) as usize], imm);
        self.write_int_flat(dst, v, &mut ev, demand);
        tracer.on_retire(&ev);
    }

    /// Retires one non-control op at `pcu`, fetching its flat form
    /// from the image (the indexed convenience form of
    /// [`Cpu::exec_flat_op`] for the pair-head and fuel-tail paths,
    /// which retire one op per dispatch anyway).
    #[inline(always)]
    fn exec_straight<T: Tracer>(
        &mut self,
        img: &DecodedImage,
        pcu: usize,
        tracer: &mut T,
        demand: Demand,
        max_pages: usize,
    ) -> Result<(), CpuError> {
        let r = self.exec_flat_op(
            img.flat()[pcu],
            img.instr(pcu),
            img.reg_use(pcu),
            Addr::new(pcu as u32),
            self.retired,
            tracer,
            demand,
            max_pages,
        );
        // Unconditional: the only fault (page limit) fires after the op
        // has retired, exactly as on the legacy path.
        self.retired += 1;
        r
    }

    /// Retires one non-control op from its flat execution form:
    /// execute (one jump-table dispatch — ALU sub-op and FP-compare
    /// condition are folded into the opcode), emit the (demand-trimmed)
    /// event, check the memory limit if a store ran. Does **not**
    /// advance the pc — run/pair/step callers own the cursor.
    ///
    /// Register operands index with `& 31`, which the image's lowering
    /// guarantees is the identity (see [`FlatOp`]) and which elides the
    /// bounds checks on the `[u64; 32]` / `[f64; 32]` register files.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn exec_flat_op<T: Tracer>(
        &mut self,
        f: FlatOp,
        instr: loopspec_isa::Instruction,
        u: &RegUse,
        pc: Addr,
        seq: u64,
        tracer: &mut T,
        demand: Demand,
        max_pages: usize,
    ) -> Result<(), CpuError> {
        let mut ev = InstrEvent {
            seq,
            pc,
            instr,
            control: ControlOutcome {
                kind: ControlKind::None,
                taken: false,
                target: succ(pc),
            },
            reads: [None; 5],
            write: None,
            mem_read: None,
            mem_write: None,
        };
        if demand.reads() {
            self.capture_reads_from(u, &mut ev);
        }

        let mut stored = false;
        // Arm bodies: `$op.eval` / the comparison operator const-fold
        // against the constant sub-op, leaving one small straight-line
        // arm per opcode behind a single jump table.
        macro_rules! rr {
            ($op:expr) => {{
                let v = $op.eval(
                    self.regs[(f.b & 31) as usize],
                    self.regs[(f.c & 31) as usize],
                );
                self.write_int_flat(f.a, v, &mut ev, demand);
            }};
        }
        macro_rules! ri {
            ($op:expr) => {{
                let v = $op.eval(self.regs[(f.b & 31) as usize], f.imm);
                self.write_int_flat(f.a, v, &mut ev, demand);
            }};
        }
        macro_rules! frr {
            ($op:expr) => {{
                let v = $op.eval(
                    self.fregs[(f.b & 31) as usize],
                    self.fregs[(f.c & 31) as usize],
                );
                self.write_fp_flat(f.a, v, &mut ev, demand);
            }};
        }
        macro_rules! fcmp {
            ($cmp:tt) => {{
                let x = self.fregs[(f.b & 31) as usize];
                let y = self.fregs[(f.c & 31) as usize];
                self.write_int_flat(f.a, (x $cmp y) as u64, &mut ev, demand);
            }};
        }
        match f.code {
            FlatCode::Nop => {}
            FlatCode::AddRR => rr!(AluOp::Add),
            FlatCode::SubRR => rr!(AluOp::Sub),
            FlatCode::MulRR => rr!(AluOp::Mul),
            FlatCode::DivRR => rr!(AluOp::Div),
            FlatCode::RemRR => rr!(AluOp::Rem),
            FlatCode::AndRR => rr!(AluOp::And),
            FlatCode::OrRR => rr!(AluOp::Or),
            FlatCode::XorRR => rr!(AluOp::Xor),
            FlatCode::ShlRR => rr!(AluOp::Shl),
            FlatCode::ShrRR => rr!(AluOp::Shr),
            FlatCode::SarRR => rr!(AluOp::Sar),
            FlatCode::SltSRR => rr!(AluOp::SltS),
            FlatCode::SltURR => rr!(AluOp::SltU),
            FlatCode::AddRI => ri!(AluOp::Add),
            FlatCode::SubRI => ri!(AluOp::Sub),
            FlatCode::MulRI => ri!(AluOp::Mul),
            FlatCode::DivRI => ri!(AluOp::Div),
            FlatCode::RemRI => ri!(AluOp::Rem),
            FlatCode::AndRI => ri!(AluOp::And),
            FlatCode::OrRI => ri!(AluOp::Or),
            FlatCode::XorRI => ri!(AluOp::Xor),
            FlatCode::ShlRI => ri!(AluOp::Shl),
            FlatCode::ShrRI => ri!(AluOp::Shr),
            FlatCode::SarRI => ri!(AluOp::Sar),
            FlatCode::SltSRI => ri!(AluOp::SltS),
            FlatCode::SltURI => ri!(AluOp::SltU),
            FlatCode::Li => self.write_int_flat(f.a, f.imm, &mut ev, demand),
            FlatCode::Ld => {
                let addr = self.regs[(f.b & 31) as usize].wrapping_add(f.imm);
                let v = self.mem.read(addr);
                if demand.mem() {
                    ev.mem_read = Some(MemAccess { addr, value: v });
                }
                self.write_int_flat(f.a, v, &mut ev, demand);
            }
            FlatCode::St => {
                let addr = self.regs[(f.b & 31) as usize].wrapping_add(f.imm);
                let v = self.regs[(f.a & 31) as usize];
                self.mem.write(addr, v);
                if demand.mem() {
                    ev.mem_write = Some(MemAccess { addr, value: v });
                }
                stored = true;
            }
            FlatCode::FAdd => frr!(FAluOp::Add),
            FlatCode::FSub => frr!(FAluOp::Sub),
            FlatCode::FMul => frr!(FAluOp::Mul),
            FlatCode::FDiv => frr!(FAluOp::Div),
            FlatCode::FMin => frr!(FAluOp::Min),
            FlatCode::FMax => frr!(FAluOp::Max),
            FlatCode::FNeg => {
                let v = FUnOp::Neg.eval(self.fregs[(f.b & 31) as usize]);
                self.write_fp_flat(f.a, v, &mut ev, demand);
            }
            FlatCode::FAbs => {
                let v = FUnOp::Abs.eval(self.fregs[(f.b & 31) as usize]);
                self.write_fp_flat(f.a, v, &mut ev, demand);
            }
            FlatCode::FSqrt => {
                let v = FUnOp::Sqrt.eval(self.fregs[(f.b & 31) as usize]);
                self.write_fp_flat(f.a, v, &mut ev, demand);
            }
            FlatCode::FLi => {
                self.write_fp_flat(f.a, f64::from_bits(f.imm), &mut ev, demand);
            }
            FlatCode::FLd => {
                let addr = self.regs[(f.b & 31) as usize].wrapping_add(f.imm);
                let bits = self.mem.read(addr);
                if demand.mem() {
                    ev.mem_read = Some(MemAccess { addr, value: bits });
                }
                self.write_fp_flat(f.a, f64::from_bits(bits), &mut ev, demand);
            }
            FlatCode::FSt => {
                let addr = self.regs[(f.b & 31) as usize].wrapping_add(f.imm);
                let bits = self.fregs[(f.a & 31) as usize].to_bits();
                self.mem.write(addr, bits);
                if demand.mem() {
                    ev.mem_write = Some(MemAccess { addr, value: bits });
                }
                stored = true;
            }
            // Numeric FP comparison (NaN compares false except Ne),
            // matching the legacy interpreter exactly.
            FlatCode::FcEq => fcmp!(==),
            FlatCode::FcNe => fcmp!(!=),
            FlatCode::FcLt => fcmp!(<),
            FlatCode::FcLe => fcmp!(<=),
            FlatCode::FcGt => fcmp!(>),
            FlatCode::FcGe => fcmp!(>=),
            FlatCode::ItoF => {
                let v = self.regs[(f.b & 31) as usize] as i64 as f64;
                self.write_fp_flat(f.a, v, &mut ev, demand);
            }
            FlatCode::FtoI => {
                let v = self.fregs[(f.b & 31) as usize] as i64 as u64;
                self.write_int_flat(f.a, v, &mut ev, demand);
            }
            FlatCode::Ctl
            | FlatCode::LiAdd
            | FlatCode::MulAnd
            | FlatCode::LdAdd
            | FlatCode::LdLd
            | FlatCode::ShlShr
            | FlatCode::AddXor
            | FlatCode::StSt
            | FlatCode::StLi
            | FlatCode::AddLi
            | FlatCode::LiLd
            | FlatCode::AddSt
            | FlatCode::AluAlu
            | FlatCode::AluLi
            | FlatCode::LiAlu
            | FlatCode::AluLd
            | FlatCode::LdLi
            | FlatCode::StRep
            | FlatCode::LdRep => {
                unreachable!("control or fused op dispatched as a single straight-line op")
            }
        }

        // The caller owns the retirement counter (`seq` is the count
        // before this op): the run loop keeps it in a register and
        // stores it once per run instead of once per op.
        tracer.on_retire(&ev);

        // Loads never materialise pages (absent words read as 0), so
        // the legacy per-instruction page check can only ever fire
        // after a store — checking there is behaviourally identical.
        if stored && self.mem.pages_allocated() > max_pages {
            return Err(CpuError::MemoryLimit {
                pages: self.mem.pages_allocated(),
            });
        }
        Ok(())
    }

    /// Retires a conditional branch at `pcu` (already destructured by
    /// the caller's dispatch — no second op load) and advances the pc.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn exec_branch<T: Tracer>(
        &mut self,
        img: &DecodedImage,
        pcu: usize,
        cond: loopspec_isa::Cond,
        ra: Reg,
        rb: Reg,
        target: Addr,
        tracer: &mut T,
        demand: Demand,
    ) {
        let pc = Addr::new(pcu as u32);
        let mut ev = InstrEvent {
            seq: self.retired,
            pc,
            instr: img.instr(pcu),
            control: ControlOutcome {
                kind: img.kind(pcu),
                taken: false,
                target: succ(pc),
            },
            reads: [None; 5],
            write: None,
            mem_read: None,
            mem_write: None,
        };
        if demand.reads() {
            self.capture_reads_from(img.reg_use(pcu), &mut ev);
        }
        let next = if cond.eval(self.regs[ra.index()], self.regs[rb.index()]) {
            ev.control.taken = true;
            ev.control.target = target;
            target
        } else {
            succ(pc)
        };
        self.retired += 1;
        tracer.on_retire(&ev);
        self.pc = next;
    }

    /// Generic single-instruction dispatch (control transfers, halt,
    /// kernel calls, fuel-tail straight-line ops). Returns `Ok(true)`
    /// on halt. `fuel` is the remaining budget of the enclosing
    /// resume (≥ 1 by the loop invariant): only the kernel arm needs
    /// it, since every other dispatch retires exactly one instruction.
    /// Inlined: in call-heavy programs this is the second-hottest
    /// dispatch after [`Cpu::exec_run`], and the call preamble would
    /// cost more than the body's jump table.
    #[inline(always)]
    fn step<T: Tracer>(
        &mut self,
        img: &DecodedImage,
        pcu: usize,
        fuel: u64,
        tracer: &mut T,
        demand: Demand,
        max_pages: usize,
    ) -> Result<bool, CpuError> {
        let pc = Addr::new(pcu as u32);
        let op = img.op(pcu);
        match op {
            DecodedOp::Branch {
                cond,
                ra,
                rb,
                target,
            } => {
                self.exec_branch(img, pcu, cond, ra, rb, target, tracer, demand);
                Ok(false)
            }
            DecodedOp::KernelCall { id } => {
                // The decode pass terminates every superblock at a
                // kernel call, so it always dispatches from here —
                // through the same executor the legacy interpreter
                // uses, which is what makes the two paths identical
                // on kernels by construction.
                if self.exec_kernel(id, fuel, tracer, max_pages)? {
                    self.pc = succ(pc);
                }
                Ok(false)
            }
            DecodedOp::Halt
            | DecodedOp::Jump { .. }
            | DecodedOp::JumpInd { .. }
            | DecodedOp::Call { .. }
            | DecodedOp::CallInd { .. }
            | DecodedOp::Ret { .. } => {
                let mut ev = InstrEvent {
                    seq: self.retired,
                    pc,
                    instr: img.instr(pcu),
                    control: ControlOutcome {
                        kind: img.kind(pcu),
                        taken: false,
                        target: succ(pc),
                    },
                    reads: [None; 5],
                    write: None,
                    mem_read: None,
                    mem_write: None,
                };
                if demand.reads() {
                    self.capture_reads_from(img.reg_use(pcu), &mut ev);
                }
                let mut halted = false;
                let next = match op {
                    DecodedOp::Halt => {
                        halted = true;
                        succ(pc)
                    }
                    DecodedOp::Jump { target } => {
                        ev.control.taken = true;
                        ev.control.target = target;
                        target
                    }
                    DecodedOp::JumpInd { base } => {
                        let target = self.indirect_target(pc, self.regs[base.index()])?;
                        ev.control.taken = true;
                        ev.control.target = target;
                        target
                    }
                    DecodedOp::Call { target, link } => {
                        self.write_int_flat(
                            link.index() as u8,
                            succ(pc).index() as u64,
                            &mut ev,
                            demand,
                        );
                        ev.control.taken = true;
                        ev.control.target = target;
                        target
                    }
                    DecodedOp::CallInd { base, link } => {
                        let target = self.indirect_target(pc, self.regs[base.index()])?;
                        self.write_int_flat(
                            link.index() as u8,
                            succ(pc).index() as u64,
                            &mut ev,
                            demand,
                        );
                        ev.control.taken = true;
                        ev.control.target = target;
                        target
                    }
                    DecodedOp::Ret { link } => {
                        let target = self.indirect_target(pc, self.regs[link.index()])?;
                        ev.control.taken = true;
                        ev.control.target = target;
                        target
                    }
                    _ => unreachable!(),
                };
                self.retired += 1;
                tracer.on_retire(&ev);
                if halted {
                    return Ok(true);
                }
                self.pc = next;
                Ok(false)
            }
            _ => {
                self.exec_straight(img, pcu, tracer, demand, max_pages)?;
                self.pc = succ(pc);
                Ok(false)
            }
        }
    }

    /// [`Cpu::capture_reads`] with the pre-computed [`RegUse`] from
    /// the decoded image instead of a per-retirement `reg_use()` call.
    #[inline(always)]
    pub(crate) fn capture_reads_from(&self, u: &RegUse, ev: &mut InstrEvent) {
        let mut slot = 0;
        for r in u.reads.iter().flatten() {
            ev.reads[slot] = Some(RegRead {
                reg: ArchReg::Int(*r),
                value: self.regs[r.index()],
            });
            slot += 1;
        }
        for r in u.freads.iter().flatten() {
            ev.reads[slot] = Some(RegRead {
                reg: ArchReg::Fp(*r),
                value: self.fregs[r.index()].to_bits(),
            });
            slot += 1;
        }
    }

    /// Writes an integer register by flat (byte) index, recording the
    /// event write when demanded and dropping writes to the hardwired
    /// zero register — exactly [`Cpu::set_reg`]'s semantics.
    #[inline(always)]
    pub(crate) fn write_int_flat(&mut self, a: u8, v: u64, ev: &mut InstrEvent, demand: Demand) {
        if demand.write() {
            ev.write = Some(RegWrite {
                reg: ArchReg::Int(Reg::ALL[(a & 31) as usize]),
                value: v,
            });
        }
        if a != 0 {
            self.regs[(a & 31) as usize] = v;
        }
    }

    /// Writes an FP register by flat (byte) index, recording the event
    /// write (as bits) when demanded.
    #[inline(always)]
    fn write_fp_flat(&mut self, a: u8, v: f64, ev: &mut InstrEvent, demand: Demand) {
        if demand.write() {
            ev.write = Some(RegWrite {
                reg: ArchReg::Fp(FReg::ALL[(a & 31) as usize]),
                value: v.to_bits(),
            });
        }
        self.fregs[(a & 31) as usize] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{CountingTracer, NullTracer};
    use loopspec_asm::ProgramBuilder;
    use loopspec_isa::AluOp;

    /// A workload with loops, calls, branches and memory traffic.
    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::with_seed(11);
        b.define_func("accum", |b| {
            b.op(
                AluOp::Add,
                ProgramBuilder::RET_REG,
                ProgramBuilder::ARG_REGS[0],
                ProgramBuilder::ARG_REGS[1],
            );
        });
        let sum = b.alloc_reg();
        let out = b.alloc_static(8);
        b.li(sum, 0);
        b.counted_loop(8, |b, i| {
            b.work(3);
            b.op(AluOp::Add, sum, sum, i);
            b.store_idx(sum, out, i);
        });
        b.set_arg(0, 5);
        b.set_arg(1, 37);
        b.call_func("accum");
        b.store_static(ProgramBuilder::RET_REG, out);
        b.finish().unwrap()
    }

    /// Records every event verbatim, demanding everything.
    #[derive(Default)]
    struct Recorder {
        events: Vec<InstrEvent>,
    }
    impl Tracer for Recorder {
        fn on_retire(&mut self, ev: &InstrEvent) {
            self.events.push(*ev);
        }
    }

    fn arch_state(cpu: &Cpu) -> Vec<u8> {
        let mut enc = loopspec_isa::snap::Enc::new();
        cpu.save_state(&mut enc);
        enc.into_bytes()
    }

    #[test]
    fn decoded_events_and_state_match_legacy() {
        let p = mixed_program();
        let decoded = DecodedProgram::new(&p);
        assert!(decoded.matches(&p));
        assert!(decoded.fused_pairs() > 0, "loop back edges should fuse");

        let mut legacy_cpu = Cpu::new();
        let mut legacy = Recorder::default();
        let ls = legacy_cpu
            .run(&p, &mut legacy, RunLimits::default())
            .unwrap();

        let mut dec_cpu = Cpu::new();
        let mut dec = Recorder::default();
        let ds = dec_cpu
            .run_decoded(&decoded, &mut dec, RunLimits::default())
            .unwrap();

        assert_eq!(ls.retired, ds.retired);
        assert_eq!(ls.completion, ds.completion);
        assert_eq!(legacy.events, dec.events);
        assert_eq!(arch_state(&legacy_cpu), arch_state(&dec_cpu));
    }

    /// The rep-block fast path must be invisible: same-page runs take
    /// it, page-split runs and pointer-chasing load runs must bail to
    /// the generic walk, and all of them retire events and state
    /// bit-identical to the legacy interpreter. The stale-pointer
    /// registers below are primed with *same-page* addresses so a fast
    /// path that precomputed load addresses (skipping the base-written-
    /// by-earlier-element hazard check) would read the wrong cells
    /// rather than merely failing the page check.
    #[test]
    fn rep_fast_path_matches_legacy_on_hazards_and_page_splits() {
        use loopspec_isa::Instruction as I;
        let mut b = ProgramBuilder::new();
        let base = b.alloc_reg();
        let far = b.alloc_reg();
        let v = b.alloc_reg();
        let (p0, p1, p2) = (b.alloc_reg(), b.alloc_reg(), b.alloc_reg());
        let (q0, q1, q2) = (b.alloc_reg(), b.alloc_reg(), b.alloc_reg());
        let a = b.alloc_static(16);
        b.li(base, a);
        b.li(far, a + (1 << 13)); // 2 pages away (pages are 4096 words)

        // Pointer chain in memory: a -> a+1 -> a+2 -> 99, plus decoys
        // at the cells a stale precomputation would read.
        for (off, val) in [(0, a + 1), (1, a + 2), (2, 99), (5, 1111), (6, 2222)] {
            b.li(v, val);
            b.emit(I::Store {
                src: v,
                base,
                offset: off,
            });
        }

        // Same-page store run: the fast path proper.
        b.li(v, 7);
        for off in 8..12 {
            b.emit(I::Store {
                src: v,
                base,
                offset: off,
            });
        }
        // Page-split store run: must bail to the generic walk.
        b.emit(I::Store {
            src: v,
            base,
            offset: 12,
        });
        b.emit(I::Store {
            src: v,
            base: far,
            offset: 0,
        });
        b.emit(I::Store {
            src: base,
            base: far,
            offset: 1,
        });

        // Same-page load run with independent registers: fast path.
        b.emit(I::Load {
            rd: q0,
            base,
            offset: 8,
        });
        b.emit(I::Load {
            rd: q1,
            base,
            offset: 9,
        });
        b.emit(I::Load {
            rd: q2,
            base,
            offset: 10,
        });
        // Pointer-chasing load run: p0/p1 hold stale same-page
        // addresses, so only the hazard bail-out keeps this correct.
        b.li(p0, a + 5);
        b.li(p1, a + 6);
        b.emit(I::Load {
            rd: p0,
            base,
            offset: 0,
        });
        b.emit(I::Load {
            rd: p1,
            base: p0,
            offset: 0,
        });
        b.emit(I::Load {
            rd: p2,
            base: p1,
            offset: 0,
        });
        b.store_static(p2, a + 15);
        let p = b.finish().unwrap();

        let decoded = DecodedProgram::new(&p);
        let reps: Vec<FlatCode> = decoded
            .image()
            .flat2()
            .iter()
            .filter(|f| f.code.is_rep())
            .map(|f| f.code)
            .collect();
        assert!(
            reps.contains(&FlatCode::StRep) && reps.contains(&FlatCode::LdRep),
            "expected both rep kinds to fuse, got {reps:?}"
        );

        let mut legacy_cpu = Cpu::new();
        let mut legacy = Recorder::default();
        legacy_cpu
            .run(&p, &mut legacy, RunLimits::default())
            .unwrap();
        let mut dec_cpu = Cpu::new();
        let mut dec = Recorder::default();
        dec_cpu
            .run_decoded(&decoded, &mut dec, RunLimits::default())
            .unwrap();

        assert_eq!(dec_cpu.reg(p2), 99, "chase must land");
        assert_eq!(legacy.events, dec.events);
        assert_eq!(arch_state(&legacy_cpu), arch_state(&dec_cpu));
    }

    #[test]
    fn fuel_cuts_inside_fused_runs_resume_exactly() {
        let p = mixed_program();
        let decoded = DecodedProgram::new(&p);

        let mut reference = Cpu::new();
        let mut ref_rec = Recorder::default();
        reference
            .run(&p, &mut ref_rec, RunLimits::default())
            .unwrap();

        // Odd fuel slices force pauses mid-run and mid-pair.
        for fuel in [1u64, 2, 3, 5, 7] {
            let mut cpu = Cpu::new();
            let mut rec = Recorder::default();
            let mut s = cpu
                .run_decoded(&decoded, &mut rec, RunLimits::with_fuel(fuel))
                .unwrap();
            while !s.halted() {
                s = cpu
                    .resume_decoded(&decoded, &mut rec, RunLimits::with_fuel(fuel))
                    .unwrap();
            }
            assert_eq!(rec.events, ref_rec.events, "fuel {fuel}");
            assert_eq!(arch_state(&cpu), arch_state(&reference), "fuel {fuel}");
        }
    }

    #[test]
    fn legacy_and_decoded_interpreters_interleave() {
        let p = mixed_program();
        let decoded = DecodedProgram::new(&p);

        let mut reference = Cpu::new();
        reference
            .run(&p, &mut NullTracer, RunLimits::default())
            .unwrap();

        let mut cpu = Cpu::new();
        cpu.pc = p.entry();
        let mut use_decoded = false;
        loop {
            let s = if use_decoded {
                cpu.resume_decoded(&decoded, &mut NullTracer, RunLimits::with_fuel(9))
            } else {
                cpu.resume(&p, &mut NullTracer, RunLimits::with_fuel(9))
            }
            .unwrap();
            if s.halted() {
                break;
            }
            use_decoded = !use_decoded;
        }
        assert_eq!(arch_state(&cpu), arch_state(&reference));
    }

    #[test]
    fn counting_tracer_sees_identical_counts() {
        let p = mixed_program();
        let decoded = DecodedProgram::new(&p);
        let mut a = CountingTracer::default();
        Cpu::new().run(&p, &mut a, RunLimits::default()).unwrap();
        let mut b = CountingTracer::default();
        Cpu::new()
            .run_decoded(&decoded, &mut b, RunLimits::default())
            .unwrap();
        assert_eq!(a.retired, b.retired);
        assert_eq!(a.branches, b.branches);
        assert_eq!(a.taken_branches, b.taken_branches);
        assert_eq!(a.calls, b.calls);
        assert_eq!(a.returns, b.returns);
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.stores, b.stores);
    }

    #[test]
    fn faults_match_legacy() {
        // Control past the end of code.
        let mut b = ProgramBuilder::new();
        b.work(2);
        let p = b.finish().unwrap();
        // Drop the halt by jumping past it: build a raw program whose
        // last instruction is not a terminator.
        let code = {
            let mut c = p.code().to_vec();
            c.pop(); // remove halt
            c
        };
        let raw = Program::new(code, p.entry(), std::collections::BTreeMap::new()).unwrap();
        let decoded = DecodedProgram::new(&raw);
        let legacy_err = Cpu::new()
            .run(&raw, &mut NullTracer, RunLimits::default())
            .unwrap_err();
        let decoded_err = Cpu::new()
            .run_decoded(&decoded, &mut NullTracer, RunLimits::default())
            .unwrap_err();
        assert_eq!(legacy_err, decoded_err);

        // Bad indirect target.
        let mut b = ProgramBuilder::new();
        let r = b.alloc_reg();
        b.li(r, i64::MAX);
        b.emit(loopspec_isa::Instruction::JumpInd { base: r });
        let p = b.finish().unwrap();
        let decoded = DecodedProgram::new(&p);
        let mut legacy_cpu = Cpu::new();
        let legacy_err = legacy_cpu
            .run(&p, &mut NullTracer, RunLimits::default())
            .unwrap_err();
        let mut dec_cpu = Cpu::new();
        let decoded_err = dec_cpu
            .run_decoded(&decoded, &mut NullTracer, RunLimits::default())
            .unwrap_err();
        assert_eq!(legacy_err, decoded_err);
        assert_eq!(legacy_cpu.retired(), dec_cpu.retired());
    }

    #[test]
    fn throughput_is_reported() {
        let p = mixed_program();
        let decoded = DecodedProgram::new(&p);
        let s = Cpu::new()
            .run_decoded(&decoded, &mut NullTracer, RunLimits::default())
            .unwrap();
        assert!(s.retired > 0);
        // Wall clock may be below timer resolution, but the accessor
        // must never report nonsense.
        assert!(s.instrs_per_sec().is_finite());
        assert!(s.instrs_per_sec() >= 0.0);
    }
}
