//! Native kernel dispatch: the execution side of the
//! [`loopspec_isa::kernel`] registry.
//!
//! A [`KernelCall`](loopspec_isa::Instruction::KernelCall) escapes the
//! general interpreter into a specialized loop over the registered
//! body. The escape is **observationally invisible**: the body's
//! instructions retire one by one — each advancing the retirement
//! counter, each reported to the tracer as an [`InstrEvent`] at its
//! virtual address ([`loopspec_isa::kernel::virtual_pc`]) — exactly as
//! if the body were inlined at those addresses and run by the ordinary
//! interpreter. Loop detection, dual-sink reports, fuel accounting and
//! snapshot bytes all come out bit-identical; only wall-clock time
//! changes.
//!
//! Three execution modes ([`KernelMode`], default from the
//! `LOOPSPEC_KERNEL_MODE` environment variable):
//!
//! * **`native`** — the production path: a tight loop over the body
//!   with pre-computed per-pc event metadata (the kernel twin of the
//!   decoded interpreter's superblock walk).
//! * **`interp`** — a deliberately independent implementation in the
//!   legacy interpreter's style: re-classify, re-walk `reg_use`, and
//!   rebuild the virtual-address remap on every step. Slow, simple,
//!   and sharing no per-pc tables with `native`.
//! * **`oracle`** — differential mode: run `native` on the real state
//!   and `interp` on a clone, byte-compare the event streams and the
//!   resulting architectural snapshots, and panic on any divergence.
//!   The genfuzz harness runs under this mode in CI.
//!
//! Fuel can run out mid-body. The pause is recorded as a
//! [`KernelResume`] cursor (kernel id + body pc) — everything else the
//! body needs lives in architectural registers — and the program
//! counter stays on the `KernelCall`, so the next resume (on either
//! interpreter, in either mode, in another process via
//! [`Cpu::save_state`]) re-enters the body where it stopped.

use loopspec_isa::kernel::{self, virtual_pc};
use loopspec_isa::{Addr, ControlKind, Instruction, RegUse};

use crate::cpu::{Cpu, CpuError};
use crate::tracer::{ControlOutcome, Demand, InstrEvent, MemAccess, Tracer};

/// How the CPU executes registered kernel bodies. See the
/// `cpu::kernel` module docs for what each mode does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Tight pre-computed dispatch loop (the production path).
    #[default]
    Native,
    /// Independent step-at-a-time reference implementation.
    Interp,
    /// Run both, byte-compare events and state, panic on divergence.
    Oracle,
}

impl KernelMode {
    /// Resolves the process-wide default from `LOOPSPEC_KERNEL_MODE`
    /// (`native` / `interp` / `oracle`; unset or unknown means
    /// [`KernelMode::Native`]).
    pub fn from_env() -> KernelMode {
        match std::env::var("LOOPSPEC_KERNEL_MODE").as_deref() {
            Ok("interp") => KernelMode::Interp,
            Ok("oracle") => KernelMode::Oracle,
            _ => KernelMode::Native,
        }
    }
}

/// Mid-body pause cursor: which kernel is in flight and the body pc to
/// re-enter at. All loop state (induction variable, accumulator,
/// addresses) is architectural, so this pair is the *entire*
/// non-architectural kernel state a snapshot must carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct KernelResume {
    pub(crate) id: u32,
    pub(crate) bpc: u32,
}

/// Per-kernel static tables the native loop consumes: the body in
/// execution form (body-local branch targets) and in event form
/// (branch targets remapped to virtual addresses), with pre-computed
/// classification per body pc.
struct KernelImage {
    id: u32,
    body: Vec<Instruction>,
    vinstrs: Vec<Instruction>,
    vkinds: Vec<ControlKind>,
    uses: Vec<RegUse>,
}

/// Rewrites one body instruction into the form events report: branch
/// targets become virtual addresses, everything else is unchanged.
fn remap(id: u32, instr: Instruction) -> Instruction {
    match instr {
        Instruction::Branch {
            cond,
            ra,
            rb,
            target,
        } => Instruction::Branch {
            cond,
            ra,
            rb,
            target: virtual_pc(id, target.index()),
        },
        other => other,
    }
}

fn images() -> &'static [KernelImage] {
    static IMAGES: std::sync::OnceLock<Vec<KernelImage>> = std::sync::OnceLock::new();
    IMAGES.get_or_init(|| {
        kernel::all()
            .iter()
            .map(|k| {
                let vinstrs: Vec<Instruction> = k.body().iter().map(|&i| remap(k.id, i)).collect();
                KernelImage {
                    id: k.id,
                    body: k.body().to_vec(),
                    vkinds: vinstrs.iter().map(|i| i.control_kind()).collect(),
                    uses: k.uses().to_vec(),
                    vinstrs,
                }
            })
            .collect()
    })
}

fn image(id: u32) -> Option<&'static KernelImage> {
    images().iter().find(|k| k.id == id)
}

/// Records every event verbatim (demanding every field) — the oracle's
/// comparison tap.
#[derive(Default)]
struct Recorder {
    events: Vec<InstrEvent>,
}

impl Tracer for Recorder {
    fn on_retire(&mut self, ev: &InstrEvent) {
        self.events.push(*ev);
    }
}

/// Forwards to the real tracer while recording, demanding every field
/// so both oracle sides see fully populated events.
struct Tee<'a, T: Tracer> {
    inner: &'a mut T,
    events: Vec<InstrEvent>,
}

impl<T: Tracer> Tracer for Tee<'_, T> {
    fn on_retire(&mut self, ev: &InstrEvent) {
        self.events.push(*ev);
        self.inner.on_retire(ev);
    }
}

impl Cpu {
    /// Executes (or resumes) kernel `id` for at most `fuel` retirements,
    /// under the CPU's [`KernelMode`]. Returns `Ok(true)` when the body
    /// completed, `Ok(false)` on a mid-body fuel pause (the resume
    /// cursor is parked in the CPU and serialized by
    /// [`Cpu::save_state`]). The caller owns the program counter: it
    /// advances past the `KernelCall` only on completion.
    ///
    /// Both interpreters funnel their `KernelCall` dispatch through
    /// here, which is what makes kernel execution identical across the
    /// legacy and decoded paths by construction.
    pub(crate) fn exec_kernel<T: Tracer>(
        &mut self,
        id: u32,
        fuel: u64,
        tracer: &mut T,
        max_pages: usize,
    ) -> Result<bool, CpuError> {
        let img = image(id).ok_or(CpuError::UnknownKernel { id, pc: self.pc })?;
        let start = match self.kernel.take() {
            Some(r) if r.id == id => r.bpc,
            _ => {
                self.telem.kernel_calls += 1;
                0
            }
        };
        let (bpc, fault) = match self.kernel_mode {
            KernelMode::Native => self.kernel_native(img, start, fuel, tracer, max_pages),
            KernelMode::Interp => self.kernel_interp(img, start, fuel, tracer, max_pages),
            KernelMode::Oracle => self.kernel_oracle(img, start, fuel, tracer, max_pages),
        };
        if bpc as usize != img.body.len() {
            // Pause (fuel) or fault mid-body: park the cursor so resume
            // — and the snapshot — lands exactly here on every path.
            self.kernel = Some(KernelResume { id, bpc });
        }
        match fault {
            Some(e) => Err(e),
            None => Ok(bpc as usize == img.body.len()),
        }
    }

    /// The production body loop: pre-computed event metadata, demand-
    /// gated field assembly (the decoded interpreter's style). Returns
    /// the body pc reached and the fault that stopped it, if any.
    fn kernel_native<T: Tracer>(
        &mut self,
        img: &KernelImage,
        start: u32,
        fuel: u64,
        tracer: &mut T,
        max_pages: usize,
    ) -> (u32, Option<CpuError>) {
        let demand = tracer.demand();
        let len = img.body.len();
        let mut bpc = start as usize;
        let mut used = 0u64;
        while used < fuel && bpc < len {
            let pc = virtual_pc(img.id, bpc as u32);
            let mut ev = InstrEvent {
                seq: self.retired,
                pc,
                instr: img.vinstrs[bpc],
                control: ControlOutcome {
                    kind: img.vkinds[bpc],
                    taken: false,
                    target: Addr::new(pc.index().wrapping_add(1)),
                },
                reads: [None; 5],
                write: None,
                mem_read: None,
                mem_write: None,
            };
            if demand.reads() {
                self.capture_reads_from(&img.uses[bpc], &mut ev);
            }
            let mut next = bpc + 1;
            let mut stored = false;
            match img.body[bpc] {
                Instruction::Nop => {}
                Instruction::Alu { op, rd, ra, rb } => {
                    let v = op.eval(self.regs[ra.index()], self.regs[rb.index()]);
                    self.write_int_flat(rd.index() as u8, v, &mut ev, demand);
                }
                Instruction::AluImm { op, rd, ra, imm } => {
                    let v = op.eval(self.regs[ra.index()], imm as i64 as u64);
                    self.write_int_flat(rd.index() as u8, v, &mut ev, demand);
                }
                Instruction::LoadImm { rd, imm } => {
                    self.write_int_flat(rd.index() as u8, imm as u64, &mut ev, demand);
                }
                Instruction::Load { rd, base, offset } => {
                    let addr = self.regs[base.index()].wrapping_add(offset as i64 as u64);
                    let v = self.mem.read(addr);
                    if demand.mem() {
                        ev.mem_read = Some(MemAccess { addr, value: v });
                    }
                    self.write_int_flat(rd.index() as u8, v, &mut ev, demand);
                }
                Instruction::Store { src, base, offset } => {
                    let addr = self.regs[base.index()].wrapping_add(offset as i64 as u64);
                    let v = self.regs[src.index()];
                    self.mem.write(addr, v);
                    if demand.mem() {
                        ev.mem_write = Some(MemAccess { addr, value: v });
                    }
                    stored = true;
                }
                Instruction::Branch {
                    cond,
                    ra,
                    rb,
                    target,
                } => {
                    if cond.eval(self.regs[ra.index()], self.regs[rb.index()]) {
                        ev.control.taken = true;
                        ev.control.target = virtual_pc(img.id, target.index());
                        next = target.index() as usize;
                    }
                }
                _ => unreachable!("instruction outside the validated kernel subset"),
            }
            self.retired += 1;
            self.telem.kernel_instrs += 1;
            used += 1;
            tracer.on_retire(&ev);
            bpc = next;
            if stored && self.mem.pages_allocated() > max_pages {
                return (
                    bpc as u32,
                    Some(CpuError::MemoryLimit {
                        pages: self.mem.pages_allocated(),
                    }),
                );
            }
        }
        (bpc as u32, None)
    }

    /// Reference body loop in the legacy interpreter's style: remap,
    /// classify and walk `reg_use` afresh on every step, assemble the
    /// full event unconditionally. Architecturally and observably
    /// identical to [`Cpu::kernel_native`] (it may fill event fields a
    /// demand mask waived — fields the tracer promised not to read).
    fn kernel_interp<T: Tracer>(
        &mut self,
        img: &KernelImage,
        start: u32,
        fuel: u64,
        tracer: &mut T,
        max_pages: usize,
    ) -> (u32, Option<CpuError>) {
        let body = kernel::lookup(img.id)
            .expect("image implies registration")
            .body();
        let mut bpc = start as usize;
        let mut used = 0u64;
        while used < fuel && bpc < body.len() {
            let instr = remap(img.id, body[bpc]);
            let pc = virtual_pc(img.id, bpc as u32);
            let mut ev = InstrEvent {
                seq: self.retired,
                pc,
                instr,
                control: ControlOutcome {
                    kind: instr.control_kind(),
                    taken: false,
                    target: Addr::new(pc.index().wrapping_add(1)),
                },
                reads: [None; 5],
                write: None,
                mem_read: None,
                mem_write: None,
            };
            self.capture_reads_from(&instr.reg_use(), &mut ev);
            let mut next = bpc + 1;
            let mut stored = false;
            match body[bpc] {
                Instruction::Nop => {}
                Instruction::Alu { op, rd, ra, rb } => {
                    let v = op.eval(self.reg(ra), self.reg(rb));
                    self.write_int_flat(rd.index() as u8, v, &mut ev, Demand::ALL);
                }
                Instruction::AluImm { op, rd, ra, imm } => {
                    let v = op.eval(self.reg(ra), imm as i64 as u64);
                    self.write_int_flat(rd.index() as u8, v, &mut ev, Demand::ALL);
                }
                Instruction::LoadImm { rd, imm } => {
                    self.write_int_flat(rd.index() as u8, imm as u64, &mut ev, Demand::ALL);
                }
                Instruction::Load { rd, base, offset } => {
                    let addr = self.reg(base).wrapping_add(offset as i64 as u64);
                    let v = self.mem.read(addr);
                    ev.mem_read = Some(MemAccess { addr, value: v });
                    self.write_int_flat(rd.index() as u8, v, &mut ev, Demand::ALL);
                }
                Instruction::Store { src, base, offset } => {
                    let addr = self.reg(base).wrapping_add(offset as i64 as u64);
                    let v = self.reg(src);
                    self.mem.write(addr, v);
                    ev.mem_write = Some(MemAccess { addr, value: v });
                    stored = true;
                }
                Instruction::Branch {
                    cond,
                    ra,
                    rb,
                    target,
                } => {
                    if cond.eval(self.reg(ra), self.reg(rb)) {
                        ev.control.taken = true;
                        ev.control.target = virtual_pc(img.id, target.index());
                        next = target.index() as usize;
                    }
                }
                _ => unreachable!("instruction outside the validated kernel subset"),
            }
            self.retired += 1;
            self.telem.kernel_instrs += 1;
            used += 1;
            tracer.on_retire(&ev);
            bpc = next;
            if stored && self.mem.pages_allocated() > max_pages {
                return (
                    bpc as u32,
                    Some(CpuError::MemoryLimit {
                        pages: self.mem.pages_allocated(),
                    }),
                );
            }
        }
        (bpc as u32, None)
    }

    /// Differential mode: `native` runs on the real state (events
    /// forwarded to the caller's tracer), `interp` on a clone, and the
    /// two are compared event-for-event and byte-for-byte.
    ///
    /// # Panics
    ///
    /// Panics on any divergence — a diverging kernel implementation
    /// must never be allowed to keep executing.
    fn kernel_oracle<T: Tracer>(
        &mut self,
        img: &KernelImage,
        start: u32,
        fuel: u64,
        tracer: &mut T,
        max_pages: usize,
    ) -> (u32, Option<CpuError>) {
        let mut shadow = self.clone();
        shadow.kernel_mode = KernelMode::Interp;

        let mut tee = Tee {
            inner: tracer,
            events: Vec::new(),
        };
        let native = self.kernel_native(img, start, fuel, &mut tee, max_pages);

        let mut rec = Recorder::default();
        let interp = shadow.kernel_interp(img, start, fuel, &mut rec, max_pages);

        assert_eq!(
            native, interp,
            "kernel oracle: outcome divergence in kernel {}",
            img.id
        );
        assert_eq!(
            tee.events.len(),
            rec.events.len(),
            "kernel oracle: event count divergence in kernel {}",
            img.id
        );
        for (a, b) in tee.events.iter().zip(&rec.events) {
            assert_eq!(
                a, b,
                "kernel oracle: event divergence in kernel {} at seq {}",
                img.id, a.seq
            );
        }
        let bytes = |cpu: &Cpu| {
            let mut enc = loopspec_isa::snap::Enc::new();
            cpu.save_state(&mut enc);
            enc.into_bytes()
        };
        // Park identical cursors before comparing snapshot bytes (the
        // caller normally does this after we return).
        let mut a = self.clone();
        let mut b = shadow;
        a.kernel = Some(KernelResume {
            id: img.id,
            bpc: native.0,
        });
        b.kernel = a.kernel;
        assert_eq!(
            bytes(&a),
            bytes(&b),
            "kernel oracle: architectural state divergence in kernel {}",
            img.id
        );
        native
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{RunLimits, RunSummary};
    use crate::tracer::NullTracer;
    use loopspec_asm::{Program, ProgramBuilder};

    /// A program that primes the argument registers and calls `id`,
    /// then stores the result.
    fn call_program(id: u32, args: [i64; 3]) -> (Program, i64) {
        let mut b = ProgramBuilder::new();
        for (k, v) in args.iter().enumerate() {
            b.set_arg(k, *v);
        }
        b.emit(Instruction::KernelCall { id });
        let out = b.alloc_static(1);
        b.store_static(ProgramBuilder::RET_REG, out);
        (b.finish().unwrap(), out)
    }

    /// The same computation written as ordinary program instructions
    /// (what the kernel body is defined to be equivalent to).
    fn ksum_reference(n: i64, vals: &[i64]) -> i64 {
        let mut acc = 0i64;
        for i in 0..n {
            acc = acc.wrapping_add(vals[(i & kernel::KMASK as i64) as usize]);
        }
        acc
    }

    fn run_mode(p: &Program, mode: KernelMode, fill: &[(u64, u64)]) -> (Cpu, RunSummary) {
        let mut cpu = Cpu::new();
        cpu.set_kernel_mode(mode);
        for &(a, v) in fill {
            cpu.mem_mut().write(a, v);
        }
        let s = cpu.run(p, &mut NullTracer, RunLimits::default()).unwrap();
        (cpu, s)
    }

    #[test]
    fn ksum_matches_reference_in_every_mode() {
        let base = 0x8000u64;
        let n = 100i64;
        let (p, out) = call_program(1, [n, base as i64, 0]);
        let vals: Vec<i64> = (0..4096).map(|i| (i * 31 - 7) as i64).collect();
        let fill: Vec<(u64, u64)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (base + i as u64, v as u64))
            .collect();
        let want = ksum_reference(n, &vals) as u64;
        for mode in [KernelMode::Native, KernelMode::Interp, KernelMode::Oracle] {
            let (cpu, s) = run_mode(&p, mode, &fill);
            assert!(s.halted(), "{mode:?}");
            assert_eq!(cpu.mem().read(out as u64), want, "{mode:?}");
            // Dispatch retires nothing itself: body instrs + the
            // program's own instructions only.
            assert_eq!(cpu.retired(), s.retired);
        }
    }

    #[test]
    fn khash_is_deterministic_and_pure_register() {
        let (p, out) = call_program(4, [1000, 12345, 0]);
        let (cpu1, _) = run_mode(&p, KernelMode::Native, &[]);
        let (cpu2, _) = run_mode(&p, KernelMode::Oracle, &[]);
        assert_eq!(cpu1.mem().read(out as u64), cpu2.mem().read(out as u64));
        assert_ne!(cpu1.mem().read(out as u64), 0);
        assert_eq!(cpu1.mem().pages_allocated(), cpu2.mem().pages_allocated());
    }

    #[test]
    fn decoded_path_matches_legacy_on_kernels() {
        use crate::decoded::DecodedProgram;
        #[derive(Default)]
        struct Recorder {
            events: Vec<InstrEvent>,
        }
        impl Tracer for Recorder {
            fn on_retire(&mut self, ev: &InstrEvent) {
                self.events.push(*ev);
            }
        }
        for def in kernel::all() {
            let (p, _) = call_program(def.id, [300, 0x9000, 0x9800]);
            let decoded = DecodedProgram::new(&p);

            let mut legacy_cpu = Cpu::new();
            legacy_cpu.set_kernel_mode(KernelMode::Native);
            let mut legacy = Recorder::default();
            let ls = legacy_cpu
                .run(&p, &mut legacy, RunLimits::default())
                .unwrap();

            let mut dec_cpu = Cpu::new();
            dec_cpu.set_kernel_mode(KernelMode::Native);
            let mut dec = Recorder::default();
            let ds = dec_cpu
                .run_decoded(&decoded, &mut dec, RunLimits::default())
                .unwrap();

            assert_eq!(ls.retired, ds.retired, "kernel {}", def.name);
            assert_eq!(legacy.events, dec.events, "kernel {}", def.name);

            // Interleave: pause under one interpreter, continue under
            // the other — including pauses that land mid-kernel-body.
            let mut mix = Cpu::new();
            let mut use_decoded = false;
            let mut s = mix
                .run(&p, &mut NullTracer, RunLimits::with_fuel(11))
                .unwrap();
            while !s.halted() {
                s = if use_decoded {
                    mix.resume_decoded(&decoded, &mut NullTracer, RunLimits::with_fuel(11))
                } else {
                    mix.resume(&p, &mut NullTracer, RunLimits::with_fuel(11))
                }
                .unwrap();
                use_decoded = !use_decoded;
            }
            assert_eq!(mix.retired(), legacy_cpu.retired(), "kernel {}", def.name);
            let bytes = |cpu: &Cpu| {
                let mut enc = loopspec_isa::snap::Enc::new();
                cpu.save_state(&mut enc);
                enc.into_bytes()
            };
            assert_eq!(bytes(&mix), bytes(&legacy_cpu), "kernel {}", def.name);
        }
    }

    #[test]
    fn kernel_telemetry_counts_dispatches_and_body_instrs() {
        let (p, _) = call_program(4, [50, 1, 0]);
        let mut cpu = Cpu::new();
        cpu.set_kernel_mode(KernelMode::Native);
        let s = cpu.run(&p, &mut NullTracer, RunLimits::default()).unwrap();
        let t = cpu.take_decoded_telemetry();
        assert_eq!(t.kernel_calls, 1);
        assert!(
            t.kernel_instrs > 50 * 5,
            "body retirements: {}",
            t.kernel_instrs
        );
        assert!(t.kernel_instrs < s.retired);
        assert!(!t.is_empty());
    }

    #[test]
    fn unknown_kernel_faults_cleanly() {
        let (p, _) = call_program(999, [1, 0, 0]);
        let mut cpu = Cpu::new();
        let err = cpu
            .run(&p, &mut NullTracer, RunLimits::default())
            .unwrap_err();
        assert!(matches!(err, CpuError::UnknownKernel { id: 999, .. }));
        assert!(err.to_string().contains("999"));
    }

    #[test]
    fn fuel_pauses_mid_body_and_resumes_exactly() {
        let (p, out) = call_program(4, [500, 99, 0]);
        let (reference, ref_s) = run_mode(&p, KernelMode::Native, &[]);

        let mut cpu = Cpu::new();
        let mut slices = 0;
        let mut first = cpu
            .run(&p, &mut NullTracer, RunLimits::with_fuel(7))
            .unwrap();
        while !first.halted() {
            slices += 1;
            // Round-trip the paused state through bytes (the cursor
            // must survive serialization).
            let mut enc = loopspec_isa::snap::Enc::new();
            cpu.save_state(&mut enc);
            let bytes = enc.into_bytes();
            let mut fresh = Cpu::new();
            let mut dec = loopspec_isa::snap::Dec::new(&bytes);
            fresh.load_state(&mut dec).unwrap();
            dec.finish().unwrap();
            cpu = fresh;
            first = cpu
                .resume(&p, &mut NullTracer, RunLimits::with_fuel(13))
                .unwrap();
        }
        assert!(slices > 10, "the kernel must have been cut many times");
        assert_eq!(cpu.retired(), ref_s.retired);
        assert_eq!(cpu.mem().read(out as u64), reference.mem().read(out as u64));
    }
}
