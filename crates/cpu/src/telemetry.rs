//! Out-of-band execution telemetry for the decoded front-end.
//!
//! [`DecodedTelemetry`] counts what the threaded-code dispatcher
//! actually did — superblock runs and their lengths, superinstruction
//! hits by shape — in plain (non-atomic) `u64` cells that the
//! dispatcher bumps inline. Nothing here is architectural: the counters
//! are never serialized by [`Cpu::save_state`](crate::Cpu::save_state),
//! never hashed into a fingerprint, and never influence execution, so
//! instrumented runs stay bit-identical to uninstrumented ones.
//!
//! The intended flow is *take-and-flush*: a harness that owns the
//! [`Cpu`](crate::Cpu) calls
//! [`take_decoded_telemetry`](crate::Cpu::take_decoded_telemetry) at a
//! convenient boundary (end of a stream, end of a shard) and folds the
//! returned struct into whatever aggregation it keeps — this crate has
//! no dependency on the metrics registry.

use loopspec_isa::FlatCode;

/// Number of distinct superinstruction shapes ([`FlatCode::LiAdd`]
/// through [`FlatCode::LdRep`], a contiguous discriminant range).
pub const FUSED_SHAPES: usize = 18;

/// Shape names in discriminant order, for labelling
/// [`DecodedTelemetry::fused_hits`] in exported metrics.
pub const FUSED_SHAPE_NAMES: [&str; FUSED_SHAPES] = [
    "li_add", "mul_and", "ld_add", "ld_ld", "shl_shr", "add_xor", "st_st", "st_li", "add_li",
    "li_ld", "add_st", "alu_alu", "alu_li", "li_alu", "alu_ld", "ld_li", "st_rep", "ld_rep",
];

/// Log2 bucket count for superblock run lengths (bucket `i` covers
/// lengths in `(2^(i-1), 2^i]`, matching the metrics crate's histogram
/// bucketing so the arrays merge directly).
pub const LEN_BUCKETS: usize = 64;

/// Counters the decoded dispatch loop bumps inline. All plain `u64` —
/// the hot paths run single-threaded over `&mut Cpu`, so atomics would
/// be pure cost.
#[derive(Debug, Clone)]
pub struct DecodedTelemetry {
    /// Straight-line superblock dispatches (one per run, clamped runs
    /// included).
    pub superblock_runs: u64,
    /// Log2-bucketed run lengths: bucket 0 is length ≤ 1, bucket `i`
    /// covers `(2^(i-1), 2^i]`.
    pub superblock_len_buckets: [u64; LEN_BUCKETS],
    /// Total instructions retired inside superblock runs.
    pub superblock_instrs: u64,
    /// Fused value→branch pair dispatches (the counted-loop back edge).
    pub fused_branch_pairs: u64,
    /// Superinstruction dispatches by shape, indexed in
    /// [`FUSED_SHAPE_NAMES`] order.
    pub fused_hits: [u64; FUSED_SHAPES],
    /// Kernel dispatches: fresh `KernelCall` entries (a mid-body
    /// fuel-pause resume re-enters without bumping this).
    pub kernel_calls: u64,
    /// Instructions retired inside kernel bodies (across all modes).
    pub kernel_instrs: u64,
}

impl Default for DecodedTelemetry {
    fn default() -> Self {
        DecodedTelemetry {
            superblock_runs: 0,
            superblock_len_buckets: [0; LEN_BUCKETS],
            superblock_instrs: 0,
            fused_branch_pairs: 0,
            fused_hits: [0; FUSED_SHAPES],
            kernel_calls: 0,
            kernel_instrs: 0,
        }
    }
}

impl DecodedTelemetry {
    /// Records one straight-line run of `len` retirements.
    #[inline(always)]
    pub(crate) fn record_superblock(&mut self, len: u64) {
        self.superblock_runs += 1;
        self.superblock_instrs += len;
        let b = if len <= 1 {
            0
        } else {
            (u64::BITS - (len - 1).leading_zeros()) as usize
        };
        self.superblock_len_buckets[b.min(LEN_BUCKETS - 1)] += 1;
    }

    /// Records one superinstruction dispatch. `code` must be a fused
    /// code (`code.fuses_two()`); others are counted into shape 0,
    /// which the dispatcher never passes.
    #[inline(always)]
    pub(crate) fn record_fused(&mut self, code: FlatCode) {
        let i = (code as u8).saturating_sub(FlatCode::LiAdd as u8) as usize;
        self.fused_hits[i.min(FUSED_SHAPES - 1)] += 1;
    }

    /// `(name, hits)` for every shape that fired at least once.
    pub fn fused_shapes(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        FUSED_SHAPE_NAMES
            .iter()
            .zip(self.fused_hits)
            .filter(|&(_, n)| n > 0)
            .map(|(&name, n)| (name, n))
    }

    /// Folds `other` into `self` (for harnesses aggregating across
    /// several CPUs).
    pub fn merge(&mut self, other: &DecodedTelemetry) {
        self.superblock_runs += other.superblock_runs;
        self.superblock_instrs += other.superblock_instrs;
        self.fused_branch_pairs += other.fused_branch_pairs;
        self.kernel_calls += other.kernel_calls;
        self.kernel_instrs += other.kernel_instrs;
        for (a, b) in self
            .superblock_len_buckets
            .iter_mut()
            .zip(other.superblock_len_buckets)
        {
            *a += b;
        }
        for (a, b) in self.fused_hits.iter_mut().zip(other.fused_hits) {
            *a += b;
        }
    }

    /// `true` when nothing has been recorded since the last take.
    pub fn is_empty(&self) -> bool {
        self.superblock_runs == 0 && self.fused_branch_pairs == 0 && self.kernel_calls == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_names_cover_the_fused_range() {
        assert_eq!(
            FUSED_SHAPES,
            (FlatCode::LdRep as u8 - FlatCode::LiAdd as u8) as usize + 1
        );
        let mut t = DecodedTelemetry::default();
        t.record_fused(FlatCode::LiAdd);
        t.record_fused(FlatCode::LdRep);
        t.record_fused(FlatCode::AluAlu);
        let shapes: Vec<_> = t.fused_shapes().collect();
        assert_eq!(
            shapes,
            vec![("li_add", 1), ("alu_alu", 1), ("ld_rep", 1)],
            "in discriminant order"
        );
    }

    #[test]
    fn superblock_buckets_are_log2() {
        let mut t = DecodedTelemetry::default();
        t.record_superblock(1);
        t.record_superblock(2);
        t.record_superblock(3);
        t.record_superblock(8);
        t.record_superblock(9);
        assert_eq!(t.superblock_runs, 5);
        assert_eq!(t.superblock_instrs, 23);
        assert_eq!(t.superblock_len_buckets[0], 1); // len 1
        assert_eq!(t.superblock_len_buckets[1], 1); // len 2
        assert_eq!(t.superblock_len_buckets[2], 1); // len 3..=4
        assert_eq!(t.superblock_len_buckets[3], 1); // len 5..=8
        assert_eq!(t.superblock_len_buckets[4], 1); // len 9..=16
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = DecodedTelemetry::default();
        a.record_superblock(4);
        a.record_fused(FlatCode::StSt);
        let mut b = DecodedTelemetry::default();
        b.record_superblock(4);
        b.fused_branch_pairs = 2;
        b.record_fused(FlatCode::StSt);
        a.merge(&b);
        assert_eq!(a.superblock_runs, 2);
        assert_eq!(a.superblock_len_buckets[2], 2);
        assert_eq!(a.fused_branch_pairs, 2);
        assert_eq!(a.fused_hits[6], 2); // st_st
        assert!(!a.is_empty());
    }
}
