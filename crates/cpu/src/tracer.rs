//! The ATOM-style instrumentation interface.

use loopspec_isa::{Addr, ControlKind, FReg, Instruction, Reg};

/// Either an integer or a floating-point architectural register.
///
/// The live-in analysis of the paper's §4 treats integer and FP registers
/// uniformly ("live-in registers"), so the instrumentation reports them in
/// one namespace. FP values are reported as their IEEE-754 bit patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArchReg {
    /// An integer register.
    Int(Reg),
    /// A floating-point register.
    Fp(FReg),
}

impl std::fmt::Display for ArchReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchReg::Int(r) => write!(f, "{r}"),
            ArchReg::Fp(r) => write!(f, "{r}"),
        }
    }
}

/// A register read observed at retirement: the register and the value it
/// held *when read* (before any write by the same instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegRead {
    /// Which register was read.
    pub reg: ArchReg,
    /// Value observed (FP values as bits).
    pub value: u64,
}

/// A register write observed at retirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegWrite {
    /// Which register was written.
    pub reg: ArchReg,
    /// Value written (FP values as bits).
    pub value: u64,
}

/// A data-memory access observed at retirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Word address accessed.
    pub addr: u64,
    /// Value loaded or stored.
    pub value: u64,
}

/// Control-flow outcome of a retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlOutcome {
    /// Static classification of the instruction.
    pub kind: ControlKind,
    /// Whether the transfer was taken. Unconditional transfers (jumps,
    /// calls, returns) are always `true`; non-control instructions `false`.
    pub taken: bool,
    /// The *dynamic* target: next PC if taken (resolves indirect targets
    /// and return addresses). Equal to `pc + 1` for not-taken branches and
    /// non-control instructions.
    pub target: Addr,
}

/// Everything the instrumentation reports about one retired instruction.
///
/// Mirrors the information an ATOM analysis routine can request: PC,
/// opcode, branch outcome and effective addresses/values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrEvent {
    /// Zero-based dynamic instruction index (retirement order).
    pub seq: u64,
    /// Address of the instruction.
    pub pc: Addr,
    /// The instruction itself.
    pub instr: Instruction,
    /// Control-flow outcome.
    pub control: ControlOutcome,
    /// Register reads with observed values (at most 3 int + 2 fp).
    pub reads: [Option<RegRead>; 5],
    /// Register write with written value, if any.
    pub write: Option<RegWrite>,
    /// Memory load, if any.
    pub mem_read: Option<MemAccess>,
    /// Memory store, if any.
    pub mem_write: Option<MemAccess>,
}

impl InstrEvent {
    /// Iterates over the register reads.
    pub fn reads_iter(&self) -> impl Iterator<Item = RegRead> + '_ {
        self.reads.iter().flatten().copied()
    }

    /// The dynamic stream position *after* this instruction commits; this
    /// is the position at which loop events triggered by the instruction
    /// (iteration starts, execution ends) take effect.
    #[inline]
    pub fn next_pos(&self) -> u64 {
        self.seq + 1
    }
}

/// The event fields a [`Tracer`] actually consumes — a capability mask
/// the interpreter queries once per run to skip assembling data nobody
/// reads.
///
/// `seq`, `pc`, `instr` and the full [`ControlOutcome`] are **always**
/// populated (the interpreter computes them to execute the instruction
/// anyway); the mask covers only the optional payload:
///
/// * [`READS`](Demand::READS) — the `reads` array (register values at
///   read time, the expensive part: a `reg_use` walk per retirement);
/// * [`WRITE`](Demand::WRITE) — the `write` record;
/// * [`MEM`](Demand::MEM) — `mem_read` / `mem_write` records.
///
/// A tracer that declares a field un-demanded must not read it: the
/// interpreter is free to leave it `None`. Composite tracers (tuples,
/// `&mut`) take the union of their parts, so under-declaring is the
/// only way to go wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Demand(u8);

impl Demand {
    /// Only the always-populated fields (seq, pc, instr, control).
    pub const NONE: Demand = Demand(0);
    /// The `reads` array.
    pub const READS: Demand = Demand(1);
    /// The `write` record.
    pub const WRITE: Demand = Demand(1 << 1);
    /// The `mem_read` / `mem_write` records.
    pub const MEM: Demand = Demand(1 << 2);
    /// Every event field — the conservative default.
    pub const ALL: Demand = Demand(0b111);

    /// Combines two masks (used by composite tracers).
    #[must_use]
    pub const fn union(self, other: Demand) -> Demand {
        Demand(self.0 | other.0)
    }

    /// `true` when the `reads` array is demanded.
    #[inline]
    pub const fn reads(self) -> bool {
        self.0 & Demand::READS.0 != 0
    }

    /// `true` when the `write` record is demanded.
    #[inline]
    pub const fn write(self) -> bool {
        self.0 & Demand::WRITE.0 != 0
    }

    /// `true` when the memory-access records are demanded.
    #[inline]
    pub const fn mem(self) -> bool {
        self.0 & Demand::MEM.0 != 0
    }
}

/// Per-retired-instruction analysis callback — the ATOM substitute.
///
/// Implementations must be cheap: they run inline in the interpreter
/// loop. Compose several analyses with the tuple impl:
/// `(&mut detector, &mut profiler)`.
pub trait Tracer {
    /// Called once per retired instruction, in program order.
    fn on_retire(&mut self, ev: &InstrEvent);

    /// Which optional event fields this tracer reads; see [`Demand`].
    /// The interpreter queries it once at the start of a run and skips
    /// assembling un-demanded fields. Defaults to [`Demand::ALL`], so
    /// existing tracers keep seeing fully populated events.
    fn demand(&self) -> Demand {
        Demand::ALL
    }
}

/// A tracer that ignores every event (pure functional execution).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn on_retire(&mut self, _ev: &InstrEvent) {}

    fn demand(&self) -> Demand {
        Demand::NONE
    }
}

/// A tracer that counts retired instructions by category — handy in tests
/// and as a smoke-check that instrumentation is wired up.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingTracer {
    /// Total retired instructions.
    pub retired: u64,
    /// Retired conditional branches.
    pub branches: u64,
    /// ... of which taken.
    pub taken_branches: u64,
    /// Retired calls (direct + indirect).
    pub calls: u64,
    /// Retired returns.
    pub returns: u64,
    /// Retired loads (int + fp).
    pub loads: u64,
    /// Retired stores (int + fp).
    pub stores: u64,
}

impl Tracer for CountingTracer {
    fn on_retire(&mut self, ev: &InstrEvent) {
        self.retired += 1;
        match ev.control.kind {
            ControlKind::CondBranch { .. } => {
                self.branches += 1;
                if ev.control.taken {
                    self.taken_branches += 1;
                }
            }
            ControlKind::Call { .. } | ControlKind::IndirectCall => self.calls += 1,
            ControlKind::Ret => self.returns += 1,
            _ => {}
        }
        if ev.mem_read.is_some() {
            self.loads += 1;
        }
        if ev.mem_write.is_some() {
            self.stores += 1;
        }
    }

    fn demand(&self) -> Demand {
        // Control outcomes are always populated; only the memory
        // records are optional payload this tracer touches.
        Demand::MEM
    }
}

impl<T: Tracer + ?Sized> Tracer for &mut T {
    #[inline]
    fn on_retire(&mut self, ev: &InstrEvent) {
        (**self).on_retire(ev);
    }

    fn demand(&self) -> Demand {
        (**self).demand()
    }
}

impl<A: Tracer, B: Tracer> Tracer for (A, B) {
    #[inline]
    fn on_retire(&mut self, ev: &InstrEvent) {
        self.0.on_retire(ev);
        self.1.on_retire(ev);
    }

    fn demand(&self) -> Demand {
        self.0.demand().union(self.1.demand())
    }
}

impl<A: Tracer, B: Tracer, C: Tracer> Tracer for (A, B, C) {
    #[inline]
    fn on_retire(&mut self, ev: &InstrEvent) {
        self.0.on_retire(ev);
        self.1.on_retire(ev);
        self.2.on_retire(ev);
    }

    fn demand(&self) -> Demand {
        self.0
            .demand()
            .union(self.1.demand())
            .union(self.2.demand())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_event() -> InstrEvent {
        InstrEvent {
            seq: 0,
            pc: Addr::ZERO,
            instr: Instruction::Nop,
            control: ControlOutcome {
                kind: ControlKind::None,
                taken: false,
                target: Addr::new(1),
            },
            reads: [None; 5],
            write: None,
            mem_read: None,
            mem_write: None,
        }
    }

    #[test]
    fn tuple_tracers_fan_out() {
        let mut pair = (CountingTracer::default(), CountingTracer::default());
        pair.on_retire(&dummy_event());
        assert_eq!(pair.0.retired, 1);
        assert_eq!(pair.1.retired, 1);
    }

    #[test]
    fn mut_ref_tracer_delegates() {
        let mut c = CountingTracer::default();
        {
            let mut r: &mut CountingTracer = &mut c;
            Tracer::on_retire(&mut r, &dummy_event());
        }
        assert_eq!(c.retired, 1);
    }

    #[test]
    fn next_pos_is_seq_plus_one() {
        let mut ev = dummy_event();
        ev.seq = 41;
        assert_eq!(ev.next_pos(), 42);
    }

    #[test]
    fn arch_reg_display() {
        assert_eq!(ArchReg::Int(Reg::R3).to_string(), "r3");
        assert_eq!(ArchReg::Fp(FReg::F9).to_string(), "f9");
    }

    #[test]
    fn demand_flags_decompose() {
        assert!(Demand::ALL.reads() && Demand::ALL.write() && Demand::ALL.mem());
        assert!(!Demand::NONE.reads() && !Demand::NONE.write() && !Demand::NONE.mem());
        let rw = Demand::READS.union(Demand::WRITE);
        assert!(rw.reads() && rw.write() && !rw.mem());
    }

    #[test]
    fn composite_tracers_union_their_demand() {
        assert_eq!(NullTracer.demand(), Demand::NONE);
        assert_eq!(CountingTracer::default().demand(), Demand::MEM);
        let pair = (NullTracer, CountingTracer::default());
        assert_eq!(pair.demand(), Demand::MEM);
        let triple = (NullTracer, NullTracer, CountingTracer::default());
        assert_eq!(triple.demand(), Demand::MEM);
        let mut c = CountingTracer::default();
        let r: &mut CountingTracer = &mut c;
        assert_eq!(r.demand(), Demand::MEM);
        // Custom tracers keep the conservative default.
        struct Plain;
        impl Tracer for Plain {
            fn on_retire(&mut self, _ev: &InstrEvent) {}
        }
        assert_eq!(Plain.demand(), Demand::ALL);
    }
}
