//! The bounded structured event journal.
//!
//! A process-wide ring buffer of typed [`EventRecord`]s — worker
//! lifecycle, cache traffic, admission decisions, corruption recovery,
//! fuzzing sweep summaries — each stamped with a monotonic sequence
//! number, the job fingerprint (or id) it belongs to, and the shard
//! index. The ring holds the most recent [`CAPACITY`] records; older
//! ones are dropped (the drop count is kept, so a dump says how much
//! history it is missing). Records dump as JSON lines for artifact
//! upload and offline triage.
//!
//! Recording is gated on [`crate::enabled`]; a disabled process never
//! takes the journal mutex.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Ring capacity: enough for a full service run's cache and worker
/// traffic, small enough to stay resident.
pub const CAPACITY: usize = 1024;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// A worker process (or link) was brought up.
    WorkerSpawn,
    /// A worker connection was lost.
    WorkerDeath,
    /// A replacement worker was spawned after a loss.
    WorkerRespawn,
    /// A shard killed two workers in a row and failed the run.
    PoisonShard,
    /// A chain was requeued from its last good snapshot.
    Requeue,
    /// A submission was answered from the report cache.
    CacheHit,
    /// A submission missed the cache and went to compute.
    CacheMiss,
    /// A cache entry was evicted (capacity or corruption).
    CacheEviction,
    /// A sealed cache entry failed its checksum and was dropped for
    /// recompute.
    SealRecovery,
    /// A submission was refused by admission control.
    AdmissionReject,
    /// A generated-scenario replay token (fuzzing context).
    ReplayToken,
    /// A per-family fuzzing sweep summary.
    SweepSummary,
}

impl EventKind {
    /// The snake_case name used in JSON dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::WorkerSpawn => "worker_spawn",
            EventKind::WorkerDeath => "worker_death",
            EventKind::WorkerRespawn => "worker_respawn",
            EventKind::PoisonShard => "poison_shard",
            EventKind::Requeue => "requeue",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::CacheEviction => "cache_eviction",
            EventKind::SealRecovery => "seal_recovery",
            EventKind::AdmissionReject => "admission_reject",
            EventKind::ReplayToken => "replay_token",
            EventKind::SweepSummary => "sweep_summary",
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotonic sequence number (1-based; survives ring eviction, so
    /// gaps in a dump mean dropped history).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// The job fingerprint or coordinator job id this event belongs to
    /// (0 when no job context exists).
    pub job: u64,
    /// The shard index within the job's chain (0 when not sharded).
    pub shard: u32,
    /// Free-form human-readable context.
    pub detail: String,
}

impl EventRecord {
    /// Renders the record as one JSON object (one line, no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"seq\": {}, \"event\": \"{}\", \"job\": \"{:#018x}\", \"shard\": {}, \"detail\": \"{}\"}}",
            self.seq,
            self.kind.name(),
            self.job,
            self.shard,
            crate::render::esc(&self.detail),
        );
        out
    }
}

#[derive(Debug, Default)]
struct Ring {
    records: VecDeque<EventRecord>,
    next_seq: u64,
    dropped: u64,
}

static JOURNAL: Mutex<Option<Ring>> = Mutex::new(None);

fn with_ring<R>(f: impl FnOnce(&mut Ring) -> R) -> R {
    let mut guard = JOURNAL.lock().expect("obs journal poisoned");
    f(guard.get_or_insert_with(Ring::default))
}

/// Appends a record (no-op while telemetry is disabled). `job` is the
/// job fingerprint or id, `shard` the shard index; pass 0 when there is
/// no such context.
pub fn record(kind: EventKind, job: u64, shard: u32, detail: impl Into<String>) {
    if !crate::enabled() {
        return;
    }
    with_ring(|ring| {
        ring.next_seq += 1;
        if ring.records.len() == CAPACITY {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        ring.records.push_back(EventRecord {
            seq: ring.next_seq,
            kind,
            job,
            shard,
            detail: detail.into(),
        });
    });
}

/// Number of records currently held (at most [`CAPACITY`]).
pub fn len() -> usize {
    with_ring(|ring| ring.records.len())
}

/// Records evicted by the ring so far.
pub fn dropped() -> u64 {
    with_ring(|ring| ring.dropped)
}

/// Clears the journal (tests and long-lived drivers that want per-phase
/// dumps).
pub fn clear() {
    with_ring(|ring| {
        ring.records.clear();
        ring.dropped = 0;
    });
}

/// A copy of the current records, oldest first.
pub fn snapshot() -> Vec<EventRecord> {
    with_ring(|ring| ring.records.iter().cloned().collect())
}

/// The journal as JSON lines (one object per line, oldest first).
pub fn lines() -> String {
    let mut out = String::new();
    for r in snapshot() {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// Writes [`lines`] to `path`.
///
/// # Errors
///
/// Any [`std::io::Error`] from creating or writing the file.
pub fn dump_to(path: &str) -> std::io::Result<()> {
    std::fs::write(path, lines())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The journal is process-global state shared by every test in this
    // binary, so the ring tests serialize behind one lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn records_round_trip_through_the_ring() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::set_enabled(true);
        clear();
        record(EventKind::CacheHit, 0xabcd, 3, "warm");
        record(EventKind::WorkerDeath, 7, 0, "pipe closed");
        let snap = snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].kind, EventKind::CacheHit);
        assert_eq!(snap[0].job, 0xabcd);
        assert_eq!(snap[0].shard, 3);
        assert_eq!(snap[1].kind, EventKind::WorkerDeath);
        assert!(snap[1].seq > snap[0].seq);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::set_enabled(true);
        clear();
        for i in 0..(CAPACITY as u64 + 10) {
            record(EventKind::Requeue, i, 0, "");
        }
        assert_eq!(len(), CAPACITY);
        assert_eq!(dropped(), 10);
        let snap = snapshot();
        assert_eq!(snap[0].job, 10, "oldest ten evicted");
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::set_enabled(true);
        clear();
        crate::set_enabled(false);
        record(EventKind::CacheMiss, 1, 0, "ignored");
        crate::set_enabled(true);
        assert_eq!(len(), 0);
    }

    #[test]
    fn json_lines_are_one_object_per_record() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::set_enabled(true);
        clear();
        record(EventKind::AdmissionReject, 42, 0, "queue \"full\"");
        let text = lines();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"event\": \"admission_reject\""));
        assert!(text.contains("\\\"full\\\""), "detail escaped: {text}");
        assert!(text.contains("\"job\": \"0x000000000000002a\""));
    }
}
