//! # loopspec-obs — zero-dependency telemetry
//!
//! The measurement substrate for every other crate in the workspace: a
//! [`Registry`] of named counters, gauges and log2-bucketed histograms
//! (lock-free `AtomicU64` fast paths behind cheap cloneable handles), a
//! lightweight span API ([`span!`] → monotonic-clock start/stop
//! aggregated into per-span count/total/max), and a bounded structured
//! [event journal](journal) (a ring buffer of typed records — worker
//! lifecycle, cache traffic, admission decisions — each stamped with a
//! job fingerprint and shard index, dumpable as JSON lines).
//!
//! Telemetry is strictly **out-of-band**: nothing here ever feeds back
//! into simulation state, snapshots, or report fingerprints, so an
//! instrumented run is byte-identical to a telemetry-disabled one.
//! Recording is process-wide on by default; [`set_enabled`] (or the
//! `LOOPSPEC_OBS=0` environment variable) turns the span clock and the
//! journal into no-ops while counters stay at their (already ~1 ns)
//! unconditional atomic adds.
//!
//! ```
//! use loopspec_obs as obs;
//!
//! let delivered = obs::counter("chunks_delivered");
//! delivered.add(3);
//! {
//!     let _guard = obs::span!("doc.example");
//!     // ... timed work ...
//! }
//! let text = obs::global().render_text();
//! assert!(text.contains("chunks_delivered"));
//! ```
//!
//! Exports come three ways: a Prometheus-style text rendering
//! ([`Registry::render_text`], with [`render`] helpers so other crates
//! can emit byte-stable custom lines), a JSON snapshot
//! ([`Registry::snapshot_json`]), and the journal dump
//! ([`journal::lines`] / [`journal::dump_to`]).

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod journal;
pub mod registry;
pub mod render;
pub mod span;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

pub use journal::EventKind;
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, Registry};
pub use span::{SpanGuard, SpanStat};

/// Tri-state enabled flag: 0 = uninitialized (read the environment),
/// 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether span timing and journal recording are active. Defaults to
/// `true`; `LOOPSPEC_OBS=0` (or `off`) in the environment starts the
/// process disabled. Counter/gauge/histogram writes are *not* gated —
/// they are single relaxed atomic adds and never influence outputs.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var_os("LOOPSPEC_OBS")
                .is_none_or(|v| v != *"0" && v != *"off" && v != *"false");
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turns span timing and journal recording on or off process-wide.
/// Counters keep counting either way; disabling only removes the clock
/// reads and journal pushes (the equivalence tests run both ways and
/// require byte-identical simulation output — which holds by
/// construction, because telemetry never feeds back).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// The process-wide registry every layer records into. Scoped
/// registries (e.g. one per service instance) can be created with
/// [`Registry::new`]; the global one exists so hot layers don't have to
/// thread a handle through every call.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A counter handle from the [`global`] registry (registered on first
/// use; subsequent calls with the same name return a handle to the same
/// cell).
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// A gauge handle from the [`global`] registry.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// A histogram handle from the [`global`] registry.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Well-known metric names shared across crates.
///
/// Most counters are named ad hoc at their single recording site;
/// these constants exist for names that are *read* elsewhere — smoke
/// scripts grep them out of `--metrics` output, so recording sites and
/// consumers must agree on the exact spelling.
pub mod names {
    /// Native kernel dispatches: one per `KernelCall` entered fresh
    /// (resuming a parked mid-body kernel does not re-count).
    pub const CPU_KERNEL_CALLS: &str = "cpu_kernel_calls";
    /// Kernel-body instructions retired through native dispatch (these
    /// also count toward the ordinary retired-instruction totals).
    pub const CPU_KERNEL_INSTRS: &str = "cpu_kernel_instrs";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_handles_share_cells() {
        let a = counter("lib_test_counter");
        let b = counter("lib_test_counter");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn enable_toggle_round_trips() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
