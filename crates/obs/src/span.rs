//! Lightweight timed spans.
//!
//! `obs::span!("shard.run")` resolves its aggregate once per call site
//! (a `OnceLock`'d `&'static` [`SpanStat`] from the global registry),
//! reads the monotonic clock on entry, and on drop folds the elapsed
//! nanoseconds into the aggregate with three relaxed atomics — count,
//! total, and a `fetch_max` for the maximum. When telemetry is
//! [disabled](crate::set_enabled) the guard is empty and no clock is
//! read.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A span's aggregate: how many times it ran, total and maximum
/// nanoseconds.
#[derive(Debug, Default)]
pub struct SpanStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStat {
    /// An empty aggregate.
    pub fn new() -> Self {
        SpanStat::default()
    }

    /// Folds one timed interval in.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// `(count, total_ns, max_ns)` right now.
    pub fn read(&self) -> (u64, u64, u64) {
        (
            self.count.load(Ordering::Relaxed),
            self.total_ns.load(Ordering::Relaxed),
            self.max_ns.load(Ordering::Relaxed),
        )
    }
}

/// An in-flight span; records into its [`SpanStat`] on drop.
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<(&'static SpanStat, Instant)>,
}

impl SpanGuard {
    /// An inert guard that records nothing (what [`enter`] hands out
    /// while telemetry is disabled).
    pub fn noop() -> Self {
        SpanGuard { live: None }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some((stat, start)) = self.live.take() {
            stat.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Starts a span against `stat` (no-op while telemetry is disabled).
/// Usually called through [`span!`](crate::span!), which caches the
/// stat lookup per call site.
#[inline]
pub fn enter(stat: &'static SpanStat) -> SpanGuard {
    if crate::enabled() {
        SpanGuard {
            live: Some((stat, Instant::now())),
        }
    } else {
        SpanGuard::noop()
    }
}

/// Times the enclosing scope under the given span name.
///
/// ```
/// use loopspec_obs as obs;
/// {
///     let _guard = obs::span!("example.work");
///     // ... timed ...
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static STAT: ::std::sync::OnceLock<&'static $crate::SpanStat> =
            ::std::sync::OnceLock::new();
        $crate::span::enter(STAT.get_or_init(|| $crate::global().span_stat($name)))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_count_total_max() {
        let stat = crate::global().span_stat("span_test.aggregate");
        stat.record(10);
        stat.record(30);
        stat.record(20);
        let (count, total, max) = stat.read();
        assert_eq!(count, 3);
        assert_eq!(total, 60);
        assert_eq!(max, 30);
    }

    #[test]
    fn guard_records_on_drop() {
        crate::set_enabled(true);
        let stat = crate::global().span_stat("span_test.guard");
        {
            let _g = enter(stat);
        }
        let (count, _, _) = stat.read();
        assert_eq!(count, 1);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        crate::set_enabled(false);
        let stat = crate::global().span_stat("span_test.disabled");
        {
            let _g = enter(stat);
        }
        crate::set_enabled(true);
        assert_eq!(stat.read().0, 0);
    }

    #[test]
    fn macro_resolves_one_stat_per_site() {
        crate::set_enabled(true);
        for _ in 0..3 {
            let _g = crate::span!("span_test.macro");
        }
        let found = crate::global()
            .span_totals()
            .into_iter()
            .find(|(n, ..)| n == "span_test.macro")
            .expect("span registered");
        assert_eq!(found.1, 3);
    }
}
