//! Named metric cells: counters, gauges, and log2-bucketed histograms.
//!
//! Registration takes a short-lived lock to find or create the named
//! cell; the returned handle then works lock-free — every write is one
//! relaxed atomic RMW on a shared [`AtomicU64`]. Handles are cheap
//! clones (an `Arc` bump) and can be stored in structs, passed across
//! threads, or re-fetched by name at any time. Rendering preserves
//! registration order, so metric text output is deterministic for a
//! deterministic program.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::span::SpanStat;

/// Number of log2 buckets in a [`Histogram`] — bucket `i` counts
/// observations `v` with `v <= 2^i` (cumulatively rendered, Prometheus
/// style).
pub const BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable up/down value (queue depths, in-flight counts).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (saturating at zero in aggregate use; callers keep
    /// the invariant that decrements never exceed increments).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The cell behind a [`Histogram`]: one counter per power-of-two
/// bucket, plus sum and count.
#[derive(Debug)]
pub struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// The index of the smallest bucket bound `2^i >= v` (v = 0 and 1 both
/// land in bucket 0, whose bound is 1).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        (64 - (v - 1).leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// A log2-bucketed histogram of `u64` observations (latencies in
/// nanoseconds, sizes in bytes, run lengths).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let cell = &*self.0;
        cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(v, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Merges a pre-aggregated bucket array (e.g. plain per-run `u64`
    /// slots kept off the atomic path by a hot loop) into this
    /// histogram. `pre[i]` observations are credited at bound `2^i`.
    pub fn merge_prebucketed(&self, pre: &[u64], sum: u64) {
        let cell = &*self.0;
        let mut count = 0u64;
        for (i, &n) in pre.iter().take(BUCKETS).enumerate() {
            if n > 0 {
                cell.buckets[i].fetch_add(n, Ordering::Relaxed);
                count += n;
            }
        }
        cell.sum.fetch_add(sum, Ordering::Relaxed);
        cell.count.fetch_add(count, Ordering::Relaxed);
    }

    /// A point-in-time copy of the cell.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cell = &*self.0;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| cell.buckets[i].load(Ordering::Relaxed)),
            sum: cell.sum.load(Ordering::Relaxed),
            count: cell.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts; bucket `i`
    /// holds observations `<= 2^i` not already counted lower.
    pub buckets: [u64; BUCKETS],
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

/// One metric's current value, as handed to [`Registry::visit`].
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(u64),
    /// A histogram's point-in-time snapshot (boxed: the bucket array
    /// dwarfs the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// One named metric, in registration order.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Default)]
struct Inner {
    /// Registration order drives rendering order.
    metrics: Vec<(String, Metric)>,
    index: HashMap<String, usize>,
    /// Span aggregates, separate from metrics: the [`crate::span!`]
    /// macro caches `&'static` stats per call site, so these are leaked
    /// once per distinct name (a bounded set of string literals).
    spans: Vec<(String, &'static SpanStat)>,
}

/// A set of named metrics. Most code uses the process-wide
/// [`global()`](crate::global) instance; subsystems that need isolated
/// numbers (one per service instance, say) create their own.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        if let Some(&i) = inner.index.get(name) {
            return inner.metrics[i].1.clone();
        }
        let metric = make();
        let slot = inner.metrics.len();
        inner.index.insert(name.to_string(), slot);
        inner.metrics.push((name.to_string(), metric.clone()));
        metric
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// kind — mixed-kind reuse is a programming error, not a runtime
    /// condition.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, || {
            Metric::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Metric::Counter(c) => c,
            other => panic!("metric '{name}' already registered as {other:?}"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics on mixed-kind reuse of `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, || Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0))))) {
            Metric::Gauge(g) => g,
            other => panic!("metric '{name}' already registered as {other:?}"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics on mixed-kind reuse of `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register(name, || {
            Metric::Histogram(Histogram(Arc::new(HistogramCell::new())))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric '{name}' already registered as {other:?}"),
        }
    }

    /// The span aggregate named `name`, created (and leaked — spans are
    /// a bounded set of call-site literals) on first use.
    pub fn span_stat(&self, name: &str) -> &'static SpanStat {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        if let Some((_, stat)) = inner.spans.iter().find(|(n, _)| n == name) {
            return stat;
        }
        let stat: &'static SpanStat = Box::leak(Box::new(SpanStat::new()));
        inner.spans.push((name.to_string(), stat));
        stat
    }

    /// Every metric's current value, in registration order — the
    /// rendering and JSON snapshot input.
    pub fn visit(&self, mut f: impl FnMut(&str, MetricValue)) {
        let inner = self.inner.lock().expect("obs registry poisoned");
        for (name, metric) in &inner.metrics {
            match metric {
                Metric::Counter(c) => f(name, MetricValue::Counter(c.get())),
                Metric::Gauge(g) => f(name, MetricValue::Gauge(g.get())),
                Metric::Histogram(h) => f(name, MetricValue::Histogram(Box::new(h.snapshot()))),
            }
        }
    }

    /// Every span aggregate `(name, count, total_ns, max_ns)` with at
    /// least one recording, in registration order.
    pub fn span_totals(&self) -> Vec<(String, u64, u64, u64)> {
        let inner = self.inner.lock().expect("obs registry poisoned");
        inner
            .spans
            .iter()
            .map(|(n, s)| {
                let (count, total, max) = s.read();
                (n.clone(), count, total, max)
            })
            .filter(|&(_, count, _, _)| count > 0)
            .collect()
    }

    /// Renders the whole registry as Prometheus-style text: one
    /// `name value` line per counter/gauge, `_bucket`/`_sum`/`_count`
    /// lines per histogram, and `_count`/`_sum_ns`/`_max_ns` lines per
    /// span.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.visit(|name, value| match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                crate::render::counter_line(&mut out, name, v);
            }
            MetricValue::Histogram(h) => crate::render::histogram_lines(&mut out, name, &h),
        });
        for (name, count, total, max) in self.span_totals() {
            crate::render::span_lines(&mut out, &name, count, total, max);
        }
        out
    }

    /// Renders the registry as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...},
    /// "spans": {...}}`.
    pub fn snapshot_json(&self) -> String {
        crate::render::snapshot_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_inclusive_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), 21);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn counters_and_gauges_read_back() {
        let r = Registry::new();
        let c = r.counter("c");
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 6);
        let g = r.gauge("g");
        g.set(10);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn histogram_observations_land_in_their_buckets() {
        let r = Registry::new();
        let h = r.histogram("h");
        h.observe(1);
        h.observe(3);
        h.observe(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 1004);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[10], 1);
    }

    #[test]
    fn prebucketed_merge_preserves_counts() {
        let r = Registry::new();
        let h = r.histogram("pre");
        let mut pre = [0u64; 8];
        pre[0] = 2;
        pre[3] = 5;
        h.merge_prebucketed(&pre, 42);
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 42);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[3], 5);
    }

    #[test]
    fn registration_is_idempotent_and_ordered() {
        let r = Registry::new();
        r.counter("first");
        r.gauge("second");
        r.counter("first").add(1);
        let mut names = Vec::new();
        r.visit(|n, _| names.push(n.to_string()));
        assert_eq!(names, ["first", "second"]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn mixed_kind_reuse_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn concurrent_increments_conserve_counts() {
        let r = Registry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = r.counter("hammer");
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(r.counter("hammer").get(), threads * per_thread);
    }
}
