//! Text and JSON exposition.
//!
//! The line helpers here are the shared vocabulary for *byte-stable*
//! metric text: `loopspec-svc`'s `render_metrics` renders its
//! long-standing `svc_<name> <value>` lines through [`counter_line`] /
//! [`float_line`] (so the pre-existing output is preserved verbatim)
//! and appends histogram exposition through [`histogram_lines`]. The
//! whole-registry renderers ([`Registry::render_text`],
//! [`Registry::snapshot_json`]) build on the same helpers.

use std::fmt::Write as _;

use crate::registry::{HistogramSnapshot, MetricValue, Registry, BUCKETS};

/// `name value\n` — the counter/gauge exposition line.
pub fn counter_line(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "{name} {value}");
}

/// `name value\n` with three decimal places — ratio gauges.
pub fn float_line(out: &mut String, name: &str, value: f64) {
    let _ = writeln!(out, "{name} {value:.3}");
}

/// Prometheus-style histogram exposition: cumulative
/// `name_bucket{le="2^i"}` lines up to the highest populated bucket,
/// a `+Inf` bucket, then `name_sum` and `name_count`. Empty histograms
/// render only the `+Inf`/`_sum`/`_count` triple.
pub fn histogram_lines(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let top = h
        .buckets
        .iter()
        .rposition(|&n| n > 0)
        .map_or(0, |i| i + 1)
        .min(BUCKETS - 1);
    let mut cum = 0u64;
    for (i, &n) in h.buckets.iter().enumerate().take(top) {
        cum += n;
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", 1u64 << i);
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Span exposition: `name_count`, `name_sum_ns`, `name_max_ns`.
pub fn span_lines(out: &mut String, name: &str, count: u64, total_ns: u64, max_ns: u64) {
    let _ = writeln!(out, "{name}_count {count}");
    let _ = writeln!(out, "{name}_sum_ns {total_ns}");
    let _ = writeln!(out, "{name}_max_ns {max_ns}");
}

/// Appends [`histogram_lines`] for every histogram in `registry` whose
/// name starts with `prefix` — how `svc::render_metrics` picks up its
/// latency histograms without re-rendering its counter lines.
pub fn histograms_with_prefix(out: &mut String, registry: &Registry, prefix: &str) {
    registry.visit(|name, value| {
        if let MetricValue::Histogram(h) = value {
            if name.starts_with(prefix) {
                histogram_lines(out, name, &h);
            }
        }
    });
}

/// Conservative JSON string escaping (metric names are identifiers;
/// journal details may carry quotes and backslashes).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

/// The whole registry as one JSON object with `counters`, `gauges`,
/// `histograms` (buckets as a sparse `{"2^i": n}` map plus `sum` and
/// `count`), and `spans` sections.
pub fn snapshot_json(registry: &Registry) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    registry.visit(|name, value| match value {
        MetricValue::Counter(v) => counters.push(format!("\"{}\": {v}", esc(name))),
        MetricValue::Gauge(v) => gauges.push(format!("\"{}\": {v}", esc(name))),
        MetricValue::Histogram(h) => {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(i, &n)| format!("\"{}\": {n}", 1u64 << i.min(63)))
                .collect();
            histograms.push(format!(
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": {{{}}}}}",
                esc(name),
                h.count,
                h.sum,
                buckets.join(", ")
            ));
        }
    });
    let spans: Vec<String> = registry
        .span_totals()
        .into_iter()
        .map(|(name, count, total, max)| {
            format!(
                "\"{}\": {{\"count\": {count}, \"total_ns\": {total}, \"max_ns\": {max}}}",
                esc(&name)
            )
        })
        .collect();
    format!(
        "{{\"counters\": {{{}}}, \"gauges\": {{{}}}, \"histograms\": {{{}}}, \"spans\": {{{}}}}}",
        counters.join(", "),
        gauges.join(", "),
        histograms.join(", "),
        spans.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_float_lines_are_byte_stable() {
        let mut out = String::new();
        counter_line(&mut out, "svc_submitted", 12);
        float_line(&mut out, "svc_cache_hit_rate", 0.5);
        assert_eq!(out, "svc_submitted 12\nsvc_cache_hit_rate 0.500\n");
    }

    #[test]
    fn histogram_exposition_is_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat");
        h.observe(1);
        h.observe(1);
        h.observe(5); // bucket le=8
        let mut out = String::new();
        histogram_lines(&mut out, "lat", &h.snapshot());
        assert_eq!(
            out,
            "lat_bucket{le=\"1\"} 2\n\
             lat_bucket{le=\"2\"} 2\n\
             lat_bucket{le=\"4\"} 2\n\
             lat_bucket{le=\"8\"} 3\n\
             lat_bucket{le=\"+Inf\"} 3\n\
             lat_sum 7\n\
             lat_count 3\n"
        );
    }

    #[test]
    fn empty_histogram_renders_the_inf_triple() {
        let r = Registry::new();
        let h = r.histogram("empty");
        let mut out = String::new();
        histogram_lines(&mut out, "empty", &h.snapshot());
        assert_eq!(
            out,
            "empty_bucket{le=\"+Inf\"} 0\nempty_sum 0\nempty_count 0\n"
        );
    }

    #[test]
    fn prefix_filter_selects_histograms() {
        let r = Registry::new();
        r.histogram("svc_lat").observe(1);
        r.histogram("other_lat").observe(1);
        r.counter("svc_counter").add(5);
        let mut out = String::new();
        histograms_with_prefix(&mut out, &r, "svc_");
        assert!(out.contains("svc_lat_count 1"));
        assert!(!out.contains("other_lat"));
        assert!(!out.contains("svc_counter"), "counters not rendered here");
    }

    #[test]
    fn snapshot_json_has_all_sections() {
        let r = Registry::new();
        r.counter("c").add(1);
        r.gauge("g").set(2);
        r.histogram("h").observe(3);
        let json = r.snapshot_json();
        for needle in [
            "\"counters\": {\"c\": 1}",
            "\"gauges\": {\"g\": 2}",
            "\"h\": {\"count\": 1, \"sum\": 3, \"buckets\": {\"4\": 1}}",
            "\"spans\": {",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn registry_text_renders_in_registration_order() {
        let r = Registry::new();
        r.counter("one").add(1);
        r.gauge("two").set(2);
        let text = r.render_text();
        assert!(text.starts_with("one 1\ntwo 2\n"), "{text}");
    }
}
