//! # loopspec-svc — replay as a service
//!
//! The distributed layer made one replay suite cheap to run across a
//! worker pool; this crate makes *many* of them cheap to run
//! **concurrently and repeatedly**. A [`Service`] is a persistent
//! scheduler over the same [`WorkerPool`](loopspec_dist::WorkerPool) /
//! [`run_shard`](loopspec_pipeline::run_shard) core every other driver
//! uses, accepting typed [`JobSpec`](loopspec_dist::JobSpec)
//! submissions from any number of clients and answering each with a
//! full report grid:
//!
//! * **Content-addressed cache** — reports are stored under the spec's
//!   FNV fingerprint (which deliberately ignores shard slicing: the
//!   bit-identity proof makes slicing report-invariant). A repeated
//!   query is O(1) and never touches a worker; entries are sealed with
//!   a checksum, so a corrupted entry is detected, evicted, and
//!   recomputed — never served.
//! * **Coalescing** — identical jobs submitted while the first is
//!   computing share one computation and all get the same answer.
//! * **Backpressure** — a bounded in-flight limit; beyond it,
//!   submissions are rejected with an explicit retry signal instead of
//!   queueing unboundedly.
//! * **Fault isolation** — worker deaths requeue from the last good
//!   snapshot and respawn under the pool's bounded budget; a poison
//!   job fails alone; a fully dead pool still serves cache hits.
//! * **Metrics** — a [`SvcStats`](loopspec_dist::SvcStats) snapshot
//!   (also a wire frame) and a plain-text exposition endpoint,
//!   [`Service::metrics_text`].
//!
//! ```no_run
//! use loopspec_dist::JobSpec;
//! use loopspec_svc::{Service, SvcConfig};
//!
//! // In main(), before anything else — spawned workers re-enter this
//! // same binary with `--worker`:
//! loopspec_dist::worker::maybe_serve_stdio();
//!
//! let service = Service::spawn(SvcConfig::default())?;
//! let client = service.client();
//! let first = client.run(JobSpec::new("compress"))?;
//! let again = client.run(JobSpec::new("compress"))?;
//! assert!(!first.cached && again.cached);
//! assert_eq!(first.report, again.report);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cache;
pub mod service;

pub use cache::ReportCache;
pub use service::{render_metrics, Client, Completion, Service, SvcConfig, SvcError, Ticket};
