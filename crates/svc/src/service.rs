//! The persistent replay service: a scheduler thread multiplexing many
//! concurrent [`JobSpec`] submissions over one
//! [`WorkerPool`], fronted by the
//! content-addressed [`ReportCache`].
//!
//! ## Job lifecycle
//!
//! Every submission is first fingerprinted. A cache hit answers
//! immediately (no worker touched). A fingerprint already being
//! computed attaches the submission as an extra waiter (*coalescing* —
//! one computation, N answers). Otherwise admission control applies:
//! if the number of distinct in-flight computations has reached the
//! configured queue limit, the submission is rejected (backpressure —
//! the client backs off and retries); else a new snapshot-linked chain
//! is queued and dispatched shard by shard through the same
//! [`run_shard`](loopspec_pipeline::run_shard) core every other driver
//! uses.
//!
//! ## Failure model
//!
//! Worker death mid-shard requeues the chain from its last good
//! snapshot and spawns a replacement (bounded budget, exactly the
//! coordinator's rules). A shard that kills two workers in a row while
//! respawn is active fails **that job only** — a poison job cannot
//! take the service down. Deterministic job failures (unknown
//! workload, bad lane) likewise fail only their own waiters. Even with
//! every worker dead the service keeps serving cache hits; misses fail
//! fast with an explanatory error.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};
use std::process::Command;
use std::sync::mpsc;
use std::time::Instant;

use loopspec_dist::pool::{PoolEvent, RespawnFn, WorkerPool};
use loopspec_dist::wire::{write_frame, Frame, FrameReader, Job};
use loopspec_dist::{DistError, JobSpec, LaneSpec, Report, SvcStats, WireError, WorkerLink};
use loopspec_obs::{self as obs, journal, EventKind};

use crate::cache::ReportCache;

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SvcConfig {
    /// Worker processes (or pre-connected links) in the pool.
    pub workers: usize,
    /// Admission limit: maximum distinct in-flight computations before
    /// new (uncached, uncoalesced) submissions are rejected.
    pub queue_limit: usize,
    /// Report-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
}

impl Default for SvcConfig {
    /// Two workers, 64 queued computations, 256 cached reports.
    fn default() -> Self {
        SvcConfig {
            workers: 2,
            queue_limit: 64,
            cache_capacity: 256,
        }
    }
}

/// Why a submission did not produce a report.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SvcError {
    /// Admission control refused the job — the service is at its
    /// in-flight limit. Back off and resubmit.
    Rejected {
        /// Distinct computations in flight when the job was refused.
        queue_depth: u64,
    },
    /// The job failed (deterministic worker error, poison shard, or no
    /// workers left alive).
    Failed {
        /// Human-readable cause.
        message: String,
    },
    /// The service is gone (shut down, or its scheduler thread died).
    Disconnected,
}

impl fmt::Display for SvcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvcError::Rejected { queue_depth } => {
                write!(f, "rejected by admission control ({queue_depth} in flight)")
            }
            SvcError::Failed { message } => write!(f, "job failed: {message}"),
            SvcError::Disconnected => write!(f, "replay service is gone"),
        }
    }
}

impl std::error::Error for SvcError {}

/// A finished submission: the report grid, and whether it came from
/// the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The full report — byte-identical to what a single-pass run of
    /// the same spec produces.
    pub report: Report,
    /// `true` when answered from the content-addressed cache.
    pub cached: bool,
}

type Reply = Result<Completion, SvcError>;

/// Everything the scheduler thread reacts to: pool traffic plus client
/// requests, merged on one channel.
#[derive(Debug)]
enum SvcEvent {
    Pool(PoolEvent),
    Submit {
        spec: JobSpec,
        reply: mpsc::Sender<Reply>,
    },
    Stats {
        reply: mpsc::Sender<SvcStats>,
    },
    MetricsText {
        reply: mpsc::Sender<String>,
    },
    Corrupt {
        fingerprint: u64,
        reply: mpsc::Sender<bool>,
    },
    Shutdown,
}

impl From<PoolEvent> for SvcEvent {
    fn from(ev: PoolEvent) -> Self {
        SvcEvent::Pool(ev)
    }
}

/// A pending submission's handle; blocks on [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Reply>,
}

impl Ticket {
    /// Blocks until the service answers.
    ///
    /// # Errors
    ///
    /// [`SvcError`] when the job was rejected, failed, or the service
    /// went away.
    pub fn wait(self) -> Reply {
        self.rx.recv().unwrap_or(Err(SvcError::Disconnected))
    }
}

/// A cheap, cloneable, thread-safe handle for submitting jobs.
#[derive(Debug, Clone)]
pub struct Client {
    tx: mpsc::Sender<SvcEvent>,
}

impl Client {
    /// Submits `spec` without blocking; the [`Ticket`] resolves when
    /// the service answers.
    pub fn submit(&self, spec: JobSpec) -> Ticket {
        let (reply, rx) = mpsc::channel();
        let _ = self.tx.send(SvcEvent::Submit { spec, reply });
        Ticket { rx }
    }

    /// Submits `spec` and blocks for the answer.
    ///
    /// # Errors
    ///
    /// [`SvcError`] when the job was rejected, failed, or the service
    /// went away.
    pub fn run(&self, spec: JobSpec) -> Reply {
        self.submit(spec).wait()
    }

    /// A snapshot of the service's metrics counters.
    ///
    /// # Errors
    ///
    /// [`SvcError::Disconnected`] when the service is gone.
    pub fn stats(&self) -> Result<SvcStats, SvcError> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(SvcEvent::Stats { reply })
            .map_err(|_| SvcError::Disconnected)?;
        rx.recv().map_err(|_| SvcError::Disconnected)
    }

    /// The service's metrics surface as exposition text: the
    /// byte-stable `svc_<counter> <value>` lines of [`render_metrics`]
    /// followed by the scheduler's latency histograms.
    ///
    /// # Errors
    ///
    /// [`SvcError::Disconnected`] when the service is gone.
    pub fn metrics_text(&self) -> Result<String, SvcError> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(SvcEvent::MetricsText { reply })
            .map_err(|_| SvcError::Disconnected)?;
        rx.recv().map_err(|_| SvcError::Disconnected)
    }

    /// Serves the wire protocol to one connected client: answers
    /// [`Frame::Submit`] with [`Frame::Done`] / [`Frame::Rejected`] /
    /// [`Frame::Error`], and [`Frame::StatsRequest`] with
    /// [`Frame::Stats`], until the peer closes the stream.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the transport fails, the stream decodes to
    /// garbage, or the peer sends a frame that is not a request.
    pub fn serve(&self, reader: impl Read, mut writer: impl Write) -> Result<(), WireError> {
        let mut frames = FrameReader::new(reader);
        while let Some(frame) = frames.read_frame()? {
            match frame {
                Frame::Submit { id, spec } => {
                    let answer = match self.run(spec) {
                        Ok(done) => Frame::Done {
                            id,
                            cached: done.cached,
                            report: done.report,
                        },
                        Err(SvcError::Rejected { queue_depth }) => {
                            Frame::Rejected { id, queue_depth }
                        }
                        Err(e) => Frame::Error {
                            job: id,
                            message: e.to_string(),
                        },
                    };
                    write_frame(&mut writer, &answer)?;
                }
                Frame::StatsRequest => {
                    let stats = self.stats().unwrap_or_default();
                    write_frame(&mut writer, &Frame::Stats(stats))?;
                }
                other => {
                    return Err(WireError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("client sent a non-request frame: {other:?}"),
                    )));
                }
            }
        }
        Ok(())
    }
}

/// The persistent replay service; owns the scheduler thread and,
/// transitively, the worker pool. See the [module docs](self).
#[derive(Debug)]
pub struct Service {
    tx: mpsc::Sender<SvcEvent>,
    scheduler: Option<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Starts a service over `config.workers` processes spawned by
    /// re-invoking the current executable with `--worker` (the binary
    /// must call
    /// [`maybe_serve_stdio`](loopspec_dist::worker::maybe_serve_stdio)
    /// first thing in `main`). Workers lost while serving are replaced
    /// under the pool's bounded respawn budget.
    ///
    /// # Errors
    ///
    /// [`DistError::Spawn`] when a worker cannot be started.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0`.
    pub fn spawn(config: SvcConfig) -> Result<Self, DistError> {
        let exe = std::env::current_exe().map_err(|e| DistError::Spawn {
            message: format!("cannot resolve the current executable: {e}"),
        })?;
        Self::spawn_with(config, move |_| {
            let mut cmd = Command::new(&exe);
            cmd.arg("--worker");
            cmd
        })
    }

    /// Starts a service over `config.workers` processes from
    /// per-worker commands — the hook for custom binaries or
    /// per-worker environment. Replacements use the same hook with
    /// fresh slot indices.
    ///
    /// # Errors
    ///
    /// [`DistError::Spawn`] when a worker cannot be started.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0`.
    pub fn spawn_with(
        config: SvcConfig,
        mut command: impl FnMut(usize) -> Command + Send + 'static,
    ) -> Result<Self, DistError> {
        assert!(config.workers > 0, "a service needs at least one worker");
        let links = (0..config.workers)
            .map(|i| WorkerLink::spawn(&mut command(i)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::start(config, links, Some(Box::new(command))))
    }

    /// Starts a service over already-connected links (worker threads
    /// on socket pairs, pre-spawned processes). Such a pool cannot be
    /// replenished: worker deaths shrink it to the survivors.
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty.
    pub fn with_links(config: SvcConfig, links: Vec<WorkerLink>) -> Self {
        assert!(!links.is_empty(), "a service needs at least one worker");
        Self::start(config, links, None)
    }

    fn start(config: SvcConfig, links: Vec<WorkerLink>, respawn: Option<RespawnFn>) -> Self {
        let (tx, rx) = mpsc::channel();
        let pool_tx = tx.clone();
        let scheduler = std::thread::spawn(move || {
            let (pool, alive) = WorkerPool::start(links, respawn, pool_tx);
            Scheduler::new(config, pool, &alive, rx).run();
        });
        Service {
            tx,
            scheduler: Some(scheduler),
        }
    }

    /// A cloneable submission handle.
    pub fn client(&self) -> Client {
        Client {
            tx: self.tx.clone(),
        }
    }

    /// A snapshot of the service's metrics counters.
    pub fn stats(&self) -> SvcStats {
        self.client().stats().unwrap_or_default()
    }

    /// The metrics surface in plain-text exposition format: one
    /// `svc_<counter> <value>` line per [`SvcStats`] field (byte-stable
    /// since the counters first shipped), followed by the scheduler's
    /// cache-latency histograms in Prometheus `_bucket`/`_sum`/`_count`
    /// form. Suitable for scraping or for a human terminal.
    pub fn metrics_text(&self) -> String {
        self.client()
            .metrics_text()
            .unwrap_or_else(|_| render_metrics(&SvcStats::default()))
    }

    /// Fault-injection hook: flips one byte of the cached report for
    /// `fingerprint` so the next lookup detects corruption, evicts the
    /// entry, and recomputes. Returns whether an entry existed.
    pub fn corrupt_cache_entry(&self, fingerprint: u64) -> bool {
        let (reply, rx) = mpsc::channel();
        if self
            .tx
            .send(SvcEvent::Corrupt { fingerprint, reply })
            .is_err()
        {
            return false;
        }
        rx.recv().unwrap_or(false)
    }

    /// Stops the scheduler, fails any jobs still in flight with
    /// [`SvcError::Disconnected`], and tears the worker pool down.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let _ = self.tx.send(SvcEvent::Shutdown);
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Renders a stats snapshot as `svc_<counter> <value>` lines, through
/// the byte-stable [`obs::render`] line helpers — the output for these
/// eighteen counters (and the `svc_cache_hit_rate` ratio) is preserved
/// verbatim from before the telemetry substrate existed.
pub fn render_metrics(stats: &SvcStats) -> String {
    let mut out = String::new();
    let total_lookups = stats.cache_hits + stats.cache_misses;
    let hit_rate = if total_lookups == 0 {
        0.0
    } else {
        stats.cache_hits as f64 / total_lookups as f64
    };
    for (name, value) in [
        ("svc_submitted", stats.submitted),
        ("svc_accepted", stats.accepted),
        ("svc_rejected", stats.rejected),
        ("svc_completed", stats.completed),
        ("svc_failed", stats.failed),
        ("svc_in_flight", stats.in_flight),
        ("svc_cache_hits", stats.cache_hits),
        ("svc_cache_misses", stats.cache_misses),
        ("svc_coalesced", stats.coalesced),
        ("svc_evictions", stats.evictions),
        ("svc_queue_depth", stats.queue_depth),
        ("svc_workers_idle", stats.workers_idle),
        ("svc_workers_busy", stats.workers_busy),
        ("svc_workers_dead", stats.workers_dead),
        ("svc_workers_lost", stats.workers_lost),
        ("svc_workers_respawned", stats.workers_respawned),
        ("svc_jobs_dispatched", stats.jobs_dispatched),
        ("svc_handoff_bytes", stats.handoff_bytes),
    ] {
        obs::render::counter_line(&mut out, name, value);
    }
    obs::render::float_line(&mut out, "svc_cache_hit_rate", hit_rate);
    out
}

/// Per-worker scheduling state (the pool only knows transport).
#[derive(Debug, Clone, Copy)]
enum WorkerState {
    /// Handshake sent, echo not yet received.
    Connecting,
    /// Ready for a job.
    Idle,
    /// Running shard `job` of the run keyed by `fingerprint`.
    Busy { job: u64, fingerprint: u64 },
    /// Lost; the slot stays dead for the pool's lifetime.
    Dead,
}

/// One in-flight computation: a snapshot-linked shard chain plus every
/// submission waiting on its result.
#[derive(Debug)]
struct Run {
    spec: JobSpec,
    lanes: Vec<LaneSpec>,
    shard: u32,
    executed: u64,
    snapshot: Option<Vec<u8>>,
    /// Workers killed by the current shard with no completed shard in
    /// between — the poison-job detector.
    deaths: u32,
    /// Submission time of the miss that started this computation —
    /// telemetry only (the miss-latency histogram), never serialized.
    started: Instant,
    waiters: Vec<mpsc::Sender<Reply>>,
}

/// The scheduler's metric cells: a per-service [`obs::Registry`] (two
/// services in one process never mix numbers) with every handle cached
/// at startup, so each bookkeeping bump is one relaxed atomic add. The
/// monotonic [`SvcStats`] counters live here; the live gauges (worker
/// states, cache evictions, pool totals) are still derived from
/// scheduler state at snapshot time.
#[derive(Debug)]
struct SvcMetrics {
    registry: obs::Registry,
    submitted: obs::Counter,
    accepted: obs::Counter,
    rejected: obs::Counter,
    completed: obs::Counter,
    failed: obs::Counter,
    in_flight: obs::Gauge,
    cache_hits: obs::Counter,
    cache_misses: obs::Counter,
    coalesced: obs::Counter,
    jobs_dispatched: obs::Counter,
    handoff_bytes: obs::Counter,
    queue_depth: obs::Gauge,
    hit_latency: obs::Histogram,
    miss_latency: obs::Histogram,
}

impl SvcMetrics {
    fn new() -> Self {
        let registry = obs::Registry::new();
        SvcMetrics {
            submitted: registry.counter("svc_submitted"),
            accepted: registry.counter("svc_accepted"),
            rejected: registry.counter("svc_rejected"),
            completed: registry.counter("svc_completed"),
            failed: registry.counter("svc_failed"),
            in_flight: registry.gauge("svc_in_flight"),
            cache_hits: registry.counter("svc_cache_hits"),
            cache_misses: registry.counter("svc_cache_misses"),
            coalesced: registry.counter("svc_coalesced"),
            jobs_dispatched: registry.counter("svc_jobs_dispatched"),
            handoff_bytes: registry.counter("svc_handoff_bytes"),
            queue_depth: registry.gauge("svc_queue_depth"),
            hit_latency: registry.histogram("svc_cache_hit_latency_us"),
            miss_latency: registry.histogram("svc_cache_miss_latency_us"),
            registry,
        }
    }
}

struct Scheduler {
    rx: mpsc::Receiver<SvcEvent>,
    pool: WorkerPool<SvcEvent>,
    states: Vec<WorkerState>,
    /// In-flight computations by fingerprint.
    runs: HashMap<u64, Run>,
    /// Fingerprints with a shard ready to dispatch.
    queue: VecDeque<u64>,
    cache: ReportCache,
    queue_limit: usize,
    metrics: SvcMetrics,
    next_job: u64,
}

impl Scheduler {
    fn new(
        config: SvcConfig,
        pool: WorkerPool<SvcEvent>,
        alive: &[bool],
        rx: mpsc::Receiver<SvcEvent>,
    ) -> Self {
        let states = alive
            .iter()
            .map(|&ok| {
                if ok {
                    WorkerState::Connecting
                } else {
                    WorkerState::Dead
                }
            })
            .collect::<Vec<_>>();
        let mut scheduler = Scheduler {
            rx,
            pool,
            states,
            runs: HashMap::new(),
            queue: VecDeque::new(),
            cache: ReportCache::new(config.cache_capacity),
            queue_limit: config.queue_limit,
            metrics: SvcMetrics::new(),
            next_job: 1,
        };
        // Replace initial workers that died before their handshake.
        for i in 0..scheduler.states.len() {
            if matches!(scheduler.states[i], WorkerState::Dead) {
                scheduler.respawn();
            }
        }
        scheduler
    }

    fn run(mut self) {
        loop {
            let Ok(event) = self.rx.recv() else {
                // Every sender gone (service handle dropped without a
                // shutdown, pool already down): nothing can ever
                // arrive again.
                break;
            };
            match event {
                SvcEvent::Submit { spec, reply } => self.on_submit(spec, reply),
                SvcEvent::Stats { reply } => {
                    let _ = reply.send(self.snapshot());
                }
                SvcEvent::MetricsText { reply } => {
                    let mut text = render_metrics(&self.snapshot());
                    obs::render::histograms_with_prefix(&mut text, &self.metrics.registry, "svc_");
                    let _ = reply.send(text);
                }
                SvcEvent::Corrupt { fingerprint, reply } => {
                    let _ = reply.send(self.cache.corrupt(fingerprint));
                }
                SvcEvent::Shutdown => break,
                SvcEvent::Pool(ev) => self.on_pool(ev),
            }
        }
        // Fail whatever is still waiting, then tear the pool down.
        let fingerprints: Vec<u64> = self.runs.keys().copied().collect();
        for fp in fingerprints {
            self.finish_run(fp, &Err(SvcError::Disconnected));
        }
        self.pool.shutdown();
        while self.rx.try_recv().is_ok() {}
    }

    // ---- client events ------------------------------------------------

    fn on_submit(&mut self, spec: JobSpec, reply: mpsc::Sender<Reply>) {
        let arrived = Instant::now();
        self.metrics.submitted.inc();
        if let Err(e) = spec.validate() {
            self.metrics.accepted.inc();
            self.metrics.failed.inc();
            let _ = reply.send(Err(SvcError::Failed {
                message: format!("invalid job spec: {e}"),
            }));
            return;
        }
        let fingerprint = spec.fingerprint();
        if let Some(report) = self.cache.get(fingerprint) {
            self.metrics.accepted.inc();
            self.metrics.completed.inc();
            self.metrics.cache_hits.inc();
            journal::record(
                EventKind::CacheHit,
                fingerprint,
                0,
                "served from the report cache",
            );
            let _ = reply.send(Ok(Completion {
                report,
                cached: true,
            }));
            self.metrics
                .hit_latency
                .observe(arrived.elapsed().as_micros() as u64);
            return;
        }
        if let Some(run) = self.runs.get_mut(&fingerprint) {
            // Identical job already computing: one computation, one
            // more answer.
            self.metrics.accepted.inc();
            self.metrics.in_flight.add(1);
            self.metrics.coalesced.inc();
            run.waiters.push(reply);
            return;
        }
        if self.runs.len() >= self.queue_limit {
            self.metrics.rejected.inc();
            journal::record(
                EventKind::AdmissionReject,
                fingerprint,
                0,
                format!("{} computations in flight", self.runs.len()),
            );
            let _ = reply.send(Err(SvcError::Rejected {
                queue_depth: self.runs.len() as u64,
            }));
            return;
        }
        if self.all_workers_dead() {
            // The cache outlives the pool, but a miss cannot compute.
            self.metrics.accepted.inc();
            self.metrics.failed.inc();
            let _ = reply.send(Err(SvcError::Failed {
                message: "no workers left alive".into(),
            }));
            return;
        }
        self.metrics.accepted.inc();
        self.metrics.in_flight.add(1);
        self.metrics.cache_misses.inc();
        journal::record(
            EventKind::CacheMiss,
            fingerprint,
            0,
            "queued for computation",
        );
        self.runs.insert(
            fingerprint,
            Run {
                lanes: spec.lane_specs(),
                spec,
                shard: 0,
                executed: 0,
                snapshot: None,
                deaths: 0,
                started: arrived,
                waiters: vec![reply],
            },
        );
        self.queue.push_back(fingerprint);
        self.note_queue_depth();
        self.dispatch();
    }

    // ---- pool events --------------------------------------------------

    fn on_pool(&mut self, event: PoolEvent) {
        match event {
            PoolEvent::Frame(w, Frame::Hello { .. })
                if matches!(self.states[w], WorkerState::Connecting) =>
            {
                // Echo validation is the pool's job at handshake time;
                // a wrong echo would already have surfaced as garbage.
                self.states[w] = WorkerState::Idle;
                self.dispatch();
            }
            PoolEvent::Frame(
                w,
                Frame::Snapshot {
                    job,
                    instructions,
                    bytes,
                },
            ) => {
                let Some(fp) = self.busy_fingerprint(w, job) else {
                    self.quarantine(w);
                    return;
                };
                self.metrics.handoff_bytes.add(bytes.len() as u64);
                let run = self.runs.get_mut(&fp).expect("busy run exists");
                run.executed = instructions;
                run.shard += 1;
                run.snapshot = Some(bytes);
                // Progress clears poison suspicion: only deaths on the
                // *same* shard count together.
                run.deaths = 0;
                self.queue.push_back(fp);
                self.note_queue_depth();
                self.states[w] = WorkerState::Idle;
                self.dispatch();
            }
            PoolEvent::Frame(w, Frame::Report(mut report)) => {
                let Some(fp) = self.busy_fingerprint(w, report.job) else {
                    self.quarantine(w);
                    return;
                };
                // The echoed wire job id is scheduler state, not report
                // content: zero it so a cached answer is byte-identical
                // to a fresh recompute of the same spec.
                report.job = 0;
                self.cache.insert(fp, &report);
                self.finish_run(
                    fp,
                    &Ok(Completion {
                        report,
                        cached: false,
                    }),
                );
                self.states[w] = WorkerState::Idle;
                self.dispatch();
            }
            PoolEvent::Frame(w, Frame::Error { job, message }) => {
                let Some(fp) = self.busy_fingerprint(w, job) else {
                    self.quarantine(w);
                    return;
                };
                // Deterministic failure: retrying elsewhere would fail
                // identically, so fail this job — and only this job.
                self.finish_run(fp, &Err(SvcError::Failed { message }));
                self.states[w] = WorkerState::Idle;
                self.dispatch();
            }
            PoolEvent::Frame(w, _) | PoolEvent::Garbled(w, _) => {
                // A worker speaking out of turn (or producing garbage)
                // can no longer be trusted with jobs.
                self.quarantine(w);
            }
            PoolEvent::Closed(w) => {
                // A failed job write may already have marked this slot
                // dead; only the first observation counts.
                if !matches!(self.states[w], WorkerState::Dead) {
                    self.pool.note_lost();
                    self.worker_died(w);
                }
            }
        }
    }

    /// Marks `w` dead (transport loss or protocol violation), requeues
    /// its in-flight shard from the last good snapshot — or fails the
    /// job if the shard looks poisonous — and spawns a replacement.
    fn worker_died(&mut self, w: usize) {
        let busy = match self.states[w] {
            WorkerState::Busy { fingerprint, .. } => Some(fingerprint),
            _ => None,
        };
        self.states[w] = WorkerState::Dead;
        if let Some(fp) = busy {
            let run = self.runs.get_mut(&fp).expect("busy run exists");
            run.deaths += 1;
            if run.deaths >= 2 && self.pool.can_respawn() {
                // The replacement died on the same shard: a poison job
                // would grind through fresh processes forever. Fail
                // the job; the service (and every other job) lives.
                let shard = run.shard;
                let deaths = run.deaths;
                self.finish_run(
                    fp,
                    &Err(SvcError::Failed {
                        message: format!(
                            "shard {shard} killed {deaths} workers in a row (no \
                             completed shard in between): poison job"
                        ),
                    }),
                );
            } else {
                self.queue.push_front(fp);
                self.note_queue_depth();
            }
        }
        self.respawn();
        self.fail_if_all_dead();
        self.dispatch();
    }

    /// A protocol violation from worker `w`: quarantine the slot like
    /// a death. (The reader thread follows a garbled stream with a
    /// `Closed`, which the dead-slot check then ignores.)
    fn quarantine(&mut self, w: usize) {
        if !matches!(self.states[w], WorkerState::Dead) {
            self.pool.note_lost();
            self.worker_died(w);
        }
    }

    // ---- scheduling ---------------------------------------------------

    /// Hands every ready chain head to an idle worker.
    fn dispatch(&mut self) {
        while let Some(&fp) = self.queue.front() {
            let Some(w) = self
                .states
                .iter()
                .position(|s| matches!(s, WorkerState::Idle))
            else {
                return;
            };
            self.queue.pop_front();
            self.note_queue_depth();
            let run = self.runs.get_mut(&fp).expect("queued run exists");
            let job_id = self.next_job;
            self.next_job += 1;
            // The snapshot is *moved* into the job frame (it dominates
            // the payload) and restored right after the write, so the
            // run still holds its last good snapshot if this worker is
            // later lost mid-shard.
            let job = Frame::Job(Job {
                id: job_id,
                workload: run.spec.workload.clone(),
                scale: run.spec.scale,
                lanes: run.lanes.clone(),
                shard: run.shard,
                budget: run.spec.plan.budget(run.spec.total_fuel, run.executed),
                total_fuel: run.spec.total_fuel,
                last: run.spec.plan.is_last(run.shard as usize),
                snapshot: run.snapshot.take(),
            });
            let wrote = self.pool.send(w, &job);
            let Frame::Job(job) = job else { unreachable!() };
            self.runs.get_mut(&fp).expect("queued run exists").snapshot = job.snapshot;
            match wrote {
                Ok(()) => {
                    self.metrics.jobs_dispatched.inc();
                    self.states[w] = WorkerState::Busy {
                        job: job_id,
                        fingerprint: fp,
                    };
                }
                Err(WireError::Codec(e)) => {
                    // The job itself cannot be framed (e.g. a snapshot
                    // over the frame limit): every worker would refuse
                    // it identically — fail the job, not the worker.
                    self.finish_run(
                        fp,
                        &Err(SvcError::Failed {
                            message: format!("job could not be framed: {e}"),
                        }),
                    );
                }
                Err(WireError::Io(_)) => {
                    // The worker died between frames; the job never
                    // reached it, so this death does not count against
                    // the run's poison detector.
                    self.states[w] = WorkerState::Dead;
                    self.pool.note_lost();
                    self.queue.push_front(fp);
                    self.note_queue_depth();
                    self.respawn();
                    if self.fail_if_all_dead() {
                        return;
                    }
                }
            }
        }
    }

    /// The run a busy worker's reply belongs to; `None` (protocol
    /// violation) when the worker is not busy or echoes the wrong id.
    fn busy_fingerprint(&self, w: usize, job: u64) -> Option<u64> {
        match self.states[w] {
            WorkerState::Busy {
                job: expect,
                fingerprint,
            } if expect == job => Some(fingerprint),
            _ => None,
        }
    }

    /// Answers every waiter of `fp` and removes the run, keeping the
    /// accepted = completed + failed + in_flight invariant.
    fn finish_run(&mut self, fp: u64, reply: &Reply) {
        let Some(run) = self.runs.remove(&fp) else {
            return;
        };
        self.queue.retain(|&k| k != fp);
        self.note_queue_depth();
        let n = run.waiters.len() as u64;
        self.metrics.in_flight.sub(n);
        match reply {
            Ok(_) => {
                self.metrics.completed.add(n);
                self.metrics
                    .miss_latency
                    .observe(run.started.elapsed().as_micros() as u64);
            }
            Err(_) => self.metrics.failed.add(n),
        }
        for waiter in run.waiters {
            let _ = waiter.send(reply.clone());
        }
    }

    /// Asks the pool for a replacement worker and mirrors the new
    /// slots into the scheduler's state table.
    fn respawn(&mut self) {
        for (_, ok) in self.pool.respawn_worker() {
            self.states.push(if ok {
                WorkerState::Connecting
            } else {
                WorkerState::Dead
            });
        }
    }

    fn all_workers_dead(&self) -> bool {
        self.states.iter().all(|s| matches!(s, WorkerState::Dead))
    }

    /// With no worker left nothing queued can ever complete: fail all
    /// in-flight jobs now. The service itself keeps running — the
    /// cache still answers hits. Returns whether the pool is dead.
    fn fail_if_all_dead(&mut self) -> bool {
        if !self.all_workers_dead() {
            return false;
        }
        let fingerprints: Vec<u64> = self.runs.keys().copied().collect();
        for fp in fingerprints {
            self.finish_run(
                fp,
                &Err(SvcError::Failed {
                    message: "all workers died".into(),
                }),
            );
        }
        self.queue.clear();
        self.note_queue_depth();
        true
    }

    /// Mirrors the ready-queue length into the registry gauge (the
    /// [`SvcStats`] snapshot reads `queue.len()` directly; the gauge
    /// keeps the registry's own view live between snapshots).
    fn note_queue_depth(&self) {
        self.metrics.queue_depth.set(self.queue.len() as u64);
    }

    /// A consistent stats snapshot: the monotonic counters read back
    /// out of the metric cells, plus the live gauges (queue depth,
    /// worker states, cache/pool totals) derived from scheduler state.
    /// The reconstructed struct feeds the PROTOCOL Stats frame, so the
    /// wire encoding is bit-identical to the pre-telemetry bookkeeping.
    fn snapshot(&self) -> SvcStats {
        let m = &self.metrics;
        let mut s = SvcStats {
            submitted: m.submitted.get(),
            accepted: m.accepted.get(),
            rejected: m.rejected.get(),
            completed: m.completed.get(),
            failed: m.failed.get(),
            in_flight: m.in_flight.get(),
            cache_hits: m.cache_hits.get(),
            cache_misses: m.cache_misses.get(),
            coalesced: m.coalesced.get(),
            jobs_dispatched: m.jobs_dispatched.get(),
            handoff_bytes: m.handoff_bytes.get(),
            queue_depth: self.queue.len() as u64,
            evictions: self.cache.evictions(),
            workers_lost: u64::from(self.pool.lost()),
            workers_respawned: u64::from(self.pool.respawned()),
            ..SvcStats::default()
        };
        for state in &self.states {
            match state {
                WorkerState::Idle => s.workers_idle += 1,
                // A handshaking worker is not available for work yet.
                WorkerState::Busy { .. } | WorkerState::Connecting => s.workers_busy += 1,
                WorkerState::Dead => s.workers_dead += 1,
            }
        }
        s
    }
}

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("pool", &self.pool)
            .field("runs", &self.runs.len())
            .field("queue", &self.queue.len())
            .field("cache", &self.cache.len())
            .finish()
    }
}

#[cfg(test)]
mod render_compat {
    use super::*;

    /// The pre-telemetry renderer, kept verbatim as the byte-compat
    /// oracle for [`render_metrics`]'s migration onto the shared
    /// `obs::render` line helpers.
    fn legacy_render(stats: &SvcStats) -> String {
        let mut out = String::new();
        let total_lookups = stats.cache_hits + stats.cache_misses;
        let hit_rate = if total_lookups == 0 {
            0.0
        } else {
            stats.cache_hits as f64 / total_lookups as f64
        };
        for (name, value) in [
            ("submitted", stats.submitted),
            ("accepted", stats.accepted),
            ("rejected", stats.rejected),
            ("completed", stats.completed),
            ("failed", stats.failed),
            ("in_flight", stats.in_flight),
            ("cache_hits", stats.cache_hits),
            ("cache_misses", stats.cache_misses),
            ("coalesced", stats.coalesced),
            ("evictions", stats.evictions),
            ("queue_depth", stats.queue_depth),
            ("workers_idle", stats.workers_idle),
            ("workers_busy", stats.workers_busy),
            ("workers_dead", stats.workers_dead),
            ("workers_lost", stats.workers_lost),
            ("workers_respawned", stats.workers_respawned),
            ("jobs_dispatched", stats.jobs_dispatched),
            ("handoff_bytes", stats.handoff_bytes),
        ] {
            out.push_str(&format!("svc_{name} {value}\n"));
        }
        out.push_str(&format!("svc_cache_hit_rate {hit_rate:.3}\n"));
        out
    }

    #[test]
    fn render_metrics_matches_the_legacy_renderer_byte_for_byte() {
        let zero = SvcStats::default();
        assert_eq!(render_metrics(&zero), legacy_render(&zero));
        let busy = SvcStats {
            submitted: 101,
            accepted: 90,
            rejected: 11,
            completed: 70,
            failed: 5,
            in_flight: 15,
            cache_hits: 40,
            cache_misses: 33,
            coalesced: 17,
            evictions: 3,
            queue_depth: 7,
            workers_idle: 1,
            workers_busy: 2,
            workers_dead: 4,
            workers_lost: 6,
            workers_respawned: 2,
            jobs_dispatched: 55,
            handoff_bytes: 123_456,
        };
        assert_eq!(render_metrics(&busy), legacy_render(&busy));
        assert_eq!(
            render_metrics(&busy).lines().count(),
            19,
            "eighteen counters plus the hit-rate ratio"
        );
    }
}

// The socket-pair transport these tests drive is Unix-only; the
// process-spawning production path is covered by the root-level
// `service_cache` / `service_traffic` suites and the `replay_service`
// example.
#[cfg(all(test, unix))]
mod unix_tests {
    use super::*;
    use loopspec_dist::worker::Worker;
    use loopspec_dist::Policy;
    use std::os::unix::net::UnixStream;

    /// A service over `n` worker *threads* connected by Unix socket
    /// pairs — the transport without the process spawn, so the unit
    /// tests stay fast and hermetic.
    fn thread_service(n: usize, config: SvcConfig) -> Service {
        let mut links = Vec::new();
        for _ in 0..n {
            let (ours, theirs) = UnixStream::pair().expect("socketpair");
            links.push(WorkerLink::from_unix(ours).expect("clone"));
            std::thread::spawn(move || {
                let reader = theirs.try_clone().expect("clone");
                let _ = Worker::new().serve(reader, theirs);
            });
        }
        Service::with_links(config, links)
    }

    fn small_spec(workload: &str) -> JobSpec {
        JobSpec::new(workload)
            .policies([Policy::Str])
            .tus([2])
            .total_fuel(200_000)
    }

    fn assert_invariants(s: &SvcStats) {
        assert_eq!(s.submitted, s.accepted + s.rejected, "{s:?}");
        assert_eq!(s.accepted, s.completed + s.failed + s.in_flight, "{s:?}");
    }

    #[test]
    fn repeat_submission_hits_the_cache() {
        let service = thread_service(2, SvcConfig::default());
        let client = service.client();
        let first = client.run(small_spec("compress")).expect("first run");
        let again = client.run(small_spec("compress")).expect("second run");
        assert!(!first.cached, "first submission must compute");
        assert!(again.cached, "repeat submission must hit the cache");
        assert_eq!(first.report, again.report, "cache answers byte-identically");

        // Re-slicing the same study is still the same cache line.
        let resliced = client
            .run(small_spec("compress").plan(loopspec_pipeline::Plan::split(3)))
            .expect("resliced run");
        assert!(resliced.cached, "slicing is excluded from the fingerprint");
        assert_eq!(resliced.report, first.report);

        let stats = service.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 1);
        assert_invariants(&stats);
        let text = service.metrics_text();
        assert!(text.contains("svc_cache_hits 2"), "{text}");
        assert!(
            text.starts_with(&render_metrics(&stats)),
            "counter lines precede the appended histograms: {text}"
        );
        assert!(
            text.contains("svc_cache_hit_latency_us_count 2"),
            "hit latency histogram rendered: {text}"
        );
        assert!(
            text.contains("svc_cache_miss_latency_us_count 1"),
            "miss latency histogram rendered: {text}"
        );
        service.shutdown();
    }

    #[test]
    fn identical_inflight_submissions_coalesce() {
        let service = thread_service(1, SvcConfig::default());
        let client = service.client();
        let a = client.submit(small_spec("compress"));
        let b = client.submit(small_spec("compress"));
        let (a, b) = (a.wait().expect("a"), b.wait().expect("b"));
        assert_eq!(a.report, b.report);
        let stats = service.stats();
        // Depending on timing the second submission either coalesced
        // onto the running computation or hit the freshly filled
        // cache; exactly one worker computation happened either way.
        assert_eq!(stats.cache_misses, 1, "{stats:?}");
        assert_eq!(stats.coalesced + stats.cache_hits, 1, "{stats:?}");
        assert_invariants(&stats);
        service.shutdown();
    }

    #[test]
    fn admission_control_rejects_beyond_the_queue_limit() {
        let service = thread_service(
            1,
            SvcConfig {
                workers: 1,
                queue_limit: 1,
                cache_capacity: 16,
            },
        );
        let client = service.client();
        // Distinct specs so neither coalesces with the other; the
        // second is submitted while the first still occupies the one
        // admission slot.
        let slow = client.submit(small_spec("compress").total_fuel(2_000_000));
        let refused = client.submit(small_spec("go"));
        match refused.wait() {
            Err(SvcError::Rejected { queue_depth }) => assert_eq!(queue_depth, 1),
            other => panic!("expected rejection, got {other:?}"),
        }
        slow.wait().expect("admitted job completes");
        let stats = service.stats();
        assert_eq!(stats.rejected, 1);
        assert_invariants(&stats);
        service.shutdown();
    }

    #[test]
    fn invalid_specs_fail_without_touching_workers() {
        let service = thread_service(1, SvcConfig::default());
        let client = service.client();
        match client.run(JobSpec::new("specmark")) {
            Err(SvcError::Failed { message }) => assert!(message.contains("invalid")),
            other => panic!("expected failure, got {other:?}"),
        }
        let stats = service.stats();
        assert_eq!((stats.failed, stats.jobs_dispatched), (1, 0));
        assert_invariants(&stats);
        service.shutdown();
    }

    #[test]
    fn wire_clients_get_done_stats_and_rejection_frames() {
        let service = thread_service(2, SvcConfig::default());
        let client = service.client();
        let spec = small_spec("compress");
        let mut input = Vec::new();
        write_frame(
            &mut input,
            &Frame::Submit {
                id: 1,
                spec: spec.clone(),
            },
        )
        .unwrap();
        write_frame(&mut input, &Frame::Submit { id: 2, spec }).unwrap();
        write_frame(&mut input, &Frame::StatsRequest).unwrap();
        let mut output = Vec::new();
        client.serve(&input[..], &mut output).expect("serve");
        let mut frames = FrameReader::new(&output[..]);
        let Some(Frame::Done {
            id: 1,
            cached: false,
            report,
        }) = frames.read_frame().unwrap()
        else {
            panic!("expected an uncached Done");
        };
        let Some(Frame::Done {
            id: 2,
            cached: true,
            report: cached_report,
        }) = frames.read_frame().unwrap()
        else {
            panic!("expected a cached Done");
        };
        assert_eq!(report, cached_report);
        let Some(Frame::Stats(stats)) = frames.read_frame().unwrap() else {
            panic!("expected Stats");
        };
        assert_eq!(stats.submitted, 2);
        assert_invariants(&stats);
        assert_eq!(frames.read_frame().unwrap(), None);
        service.shutdown();
    }

    #[test]
    fn corrupted_cache_entries_recompute() {
        let service = thread_service(1, SvcConfig::default());
        let client = service.client();
        let spec = small_spec("compress");
        let fingerprint = spec.fingerprint();
        let first = client.run(spec.clone()).expect("first run");
        assert!(service.corrupt_cache_entry(fingerprint));
        let recomputed = client.run(spec.clone()).expect("recompute");
        assert!(!recomputed.cached, "corrupt entry must not serve");
        assert_eq!(recomputed.report, first.report);
        let healed = client.run(spec).expect("healed");
        assert!(healed.cached, "recompute re-fills the cache line");
        let stats = service.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.cache_misses, 2);
        assert_invariants(&stats);
        service.shutdown();
    }

    #[test]
    fn errors_display_their_cause() {
        assert!(SvcError::Rejected { queue_depth: 3 }
            .to_string()
            .contains("admission"));
        assert!(SvcError::Failed {
            message: "poison".into()
        }
        .to_string()
        .contains("poison"));
        assert!(SvcError::Disconnected.to_string().contains("gone"));
    }
}
