//! The content-addressed report cache.
//!
//! Entries are keyed by [`JobSpec::fingerprint`](loopspec_dist::JobSpec::fingerprint)
//! and stored **sealed**: the report's deterministic wire encoding
//! wrapped in the `seal`/`unseal` checksum envelope from `isa::snap`.
//! A sealed entry is self-verifying — a corrupted byte anywhere in the
//! stored blob fails `unseal`, the entry is evicted, and the lookup
//! reports a miss, so the service falls back to recomputing instead of
//! serving garbage. Capacity pressure evicts least-recently-used
//! entries; a capacity of `0` disables caching entirely (every lookup
//! misses, every insert is dropped).

use std::collections::{HashMap, VecDeque};

use loopspec_core::snap::{seal, unseal};
use loopspec_dist::{Frame, Report};
use loopspec_obs::{journal, EventKind};

/// A bounded, LRU-evicting, corruption-detecting store of sealed
/// replay reports. See the [module docs](self).
#[derive(Debug)]
pub struct ReportCache {
    capacity: usize,
    entries: HashMap<u64, Vec<u8>>,
    /// LRU order, front = coldest. Every key in `entries` appears here
    /// exactly once.
    order: VecDeque<u64>,
    evictions: u64,
}

impl ReportCache {
    /// An empty cache holding at most `capacity` reports.
    pub fn new(capacity: usize) -> Self {
        ReportCache {
            capacity,
            entries: HashMap::new(),
            order: VecDeque::new(),
            evictions: 0,
        }
    }

    /// Number of cached reports.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries dropped so far — capacity pressure and detected
    /// corruption both count.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Stores `report` under `fingerprint` (replacing any previous
    /// entry), evicting the coldest entry if the cache is full.
    pub fn insert(&mut self, fingerprint: u64, report: &Report) {
        if self.capacity == 0 {
            return;
        }
        let sealed = seal(Frame::Report(report.clone()).encode());
        if self.entries.insert(fingerprint, sealed).is_none() {
            self.order.push_back(fingerprint);
            if self.entries.len() > self.capacity {
                if let Some(cold) = self.order.pop_front() {
                    self.entries.remove(&cold);
                    self.evictions += 1;
                    journal::record(
                        EventKind::CacheEviction,
                        cold,
                        0,
                        "coldest entry evicted under capacity pressure",
                    );
                }
            }
        } else {
            self.touch(fingerprint);
        }
    }

    /// Looks `fingerprint` up, unsealing and decoding the stored blob.
    /// A hit refreshes the entry's LRU position; an entry that fails
    /// its checksum or does not decode to a report is evicted and
    /// reported as a miss.
    pub fn get(&mut self, fingerprint: u64) -> Option<Report> {
        let sealed = self.entries.get(&fingerprint)?;
        let report = unseal(sealed)
            .ok()
            .and_then(|payload| Frame::decode(payload).ok())
            .and_then(|frame| match frame {
                Frame::Report(report) => Some(report),
                _ => None,
            });
        match report {
            Some(report) => {
                self.touch(fingerprint);
                Some(report)
            }
            None => {
                // Bit rot (or the fault hook): drop the entry so the
                // caller recomputes and re-caches a good copy.
                self.entries.remove(&fingerprint);
                self.order.retain(|&k| k != fingerprint);
                self.evictions += 1;
                journal::record(
                    EventKind::SealRecovery,
                    fingerprint,
                    0,
                    "sealed entry failed its checksum; evicted for recompute",
                );
                None
            }
        }
    }

    /// Fault-injection hook: flips one byte of the stored blob so the
    /// next [`ReportCache::get`] detects corruption. Returns whether an
    /// entry existed to corrupt.
    pub fn corrupt(&mut self, fingerprint: u64) -> bool {
        match self.entries.get_mut(&fingerprint) {
            Some(sealed) => {
                let mid = sealed.len() / 2;
                sealed[mid] ^= 0xff;
                true
            }
            None => false,
        }
    }

    fn touch(&mut self, fingerprint: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == fingerprint) {
            self.order.remove(pos);
            self.order.push_back(fingerprint);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(tag: u8) -> Report {
        Report {
            job: tag as u64,
            instructions: 1000 + tag as u64,
            lanes: vec![],
            state: vec![tag; 8],
        }
    }

    #[test]
    fn round_trips_reports_byte_for_byte() {
        let mut cache = ReportCache::new(4);
        cache.insert(7, &report(1));
        assert_eq!(cache.get(7), Some(report(1)));
        assert_eq!(cache.get(8), None);
    }

    #[test]
    fn capacity_evicts_the_coldest_entry() {
        let mut cache = ReportCache::new(2);
        cache.insert(1, &report(1));
        cache.insert(2, &report(2));
        cache.get(1); // 2 is now coldest
        cache.insert(3, &report(3));
        assert_eq!(cache.get(2), None, "coldest entry evicted");
        assert_eq!(cache.get(1), Some(report(1)));
        assert_eq!(cache.get(3), Some(report(3)));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn corruption_is_detected_and_evicted() {
        let mut cache = ReportCache::new(4);
        cache.insert(5, &report(5));
        assert!(cache.corrupt(5));
        assert_eq!(cache.get(5), None, "corrupt entry must not decode");
        assert_eq!(cache.len(), 0, "corrupt entry evicted");
        assert_eq!(cache.evictions(), 1);
        assert!(!cache.corrupt(5), "nothing left to corrupt");
        // A fresh insert repairs the line.
        cache.insert(5, &report(5));
        assert_eq!(cache.get(5), Some(report(5)));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ReportCache::new(0);
        cache.insert(1, &report(1));
        assert!(cache.is_empty());
        assert_eq!(cache.get(1), None);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut cache = ReportCache::new(2);
        cache.insert(1, &report(1));
        cache.insert(2, &report(2));
        cache.insert(1, &report(9)); // refresh: 2 is now coldest
        cache.insert(3, &report(3));
        assert_eq!(cache.get(1), Some(report(9)));
        assert_eq!(cache.get(2), None);
        assert_eq!(cache.len(), 2);
    }
}
