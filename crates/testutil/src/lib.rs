//! # loopspec-testutil — shared dev-only test helpers
//!
//! The build environment is offline, so the property-style test suites
//! drive their generators with a deterministic RNG instead of
//! `proptest`. This crate holds the single copy of that generator; it
//! is a dev-dependency only and never appears in the library graph.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

/// xorshift64* — deterministic, dependency-free case generator for
/// seeded property-style tests.
///
/// ```
/// use loopspec_testutil::Rng;
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next(), b.next());
/// assert!(a.below(10) < 10);
/// let v = a.range(3, 9);
/// assert!((3..9).contains(&v));
/// ```
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(2685821657736338717).wrapping_add(1))
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    /// Uniform-ish value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform-ish value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Next value as a full-range `i32`.
    pub fn i32(&mut self) -> i32 {
        self.next() as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spread() {
        let mut r = Rng::new(42);
        let vals: Vec<u64> = (0..64).map(|_| r.below(1000)).collect();
        let mut again = Rng::new(42);
        let vals2: Vec<u64> = (0..64).map(|_| again.below(1000)).collect();
        assert_eq!(vals, vals2);
        let distinct: std::collections::HashSet<_> = vals.iter().collect();
        assert!(distinct.len() > 32, "values look degenerate: {vals:?}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::new(1);
        for _ in 0..1000 {
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }
}
