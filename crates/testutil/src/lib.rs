//! # loopspec-testutil — shared dev-only test helpers
//!
//! The build environment is offline, so the property-style test suites
//! drive their generators with a deterministic RNG instead of
//! `proptest`. This crate holds the single copy of that generator; it
//! is a dev-dependency only and never appears in the library graph.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

/// xorshift64* — deterministic, dependency-free case generator for
/// seeded property-style tests.
///
/// ```
/// use loopspec_testutil::Rng;
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next(), b.next());
/// assert!(a.below(10) < 10);
/// let v = a.range(3, 9);
/// assert!((3..9).contains(&v));
/// ```
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(2685821657736338717).wrapping_add(1))
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    /// Uniform-ish value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform-ish value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Next value as a full-range `i32`.
    pub fn i32(&mut self) -> i32 {
        self.next() as i32
    }
}

/// Extracts the `<family>:<seed>` replay token from a harness failure
/// message.
///
/// Failures from the generated-scenario harness print a self-contained
/// reproduction line of the form `genfuzz --replay <family>:<seed>`;
/// this scans any text (a panic payload, a captured stderr dump, a CI
/// log excerpt) for that marker and parses the token after it, so a
/// test that catches a failure can immediately re-run the exact case.
///
/// ```
/// use loopspec_testutil::parse_replay_line;
/// let log = "gen harness failure in chase:41 — reports diverged\n    \
///            reproduce with: genfuzz --replay chase:41";
/// assert_eq!(parse_replay_line(log), Some(("chase".to_string(), 41)));
/// assert_eq!(parse_replay_line("no replay marker here"), None);
/// ```
pub fn parse_replay_line(text: &str) -> Option<(String, u64)> {
    let marker = "--replay ";
    let at = text.find(marker)? + marker.len();
    let token = text[at..]
        .split_whitespace()
        .next()?
        .trim_start_matches("gen:");
    let (family, seed) = token.split_once(':')?;
    if family.is_empty() {
        return None;
    }
    let seed = seed.parse().ok()?;
    Some((family.to_string(), seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_line_parses_from_surrounding_noise() {
        let log =
            "worker log junk\nreproduce with: genfuzz --replay nest:18446744073709551615\ntrailing";
        assert_eq!(parse_replay_line(log), Some(("nest".to_string(), u64::MAX)));
        assert_eq!(
            parse_replay_line("genfuzz --replay gen:trips:9"),
            Some(("trips".to_string(), 9))
        );
        assert_eq!(parse_replay_line("genfuzz --replay :9"), None);
        assert_eq!(parse_replay_line("genfuzz --replay trips:"), None);
        assert_eq!(parse_replay_line("genfuzz --replay trips:x"), None);
        assert_eq!(parse_replay_line("genfuzz --list"), None);
    }

    #[test]
    fn deterministic_and_spread() {
        let mut r = Rng::new(42);
        let vals: Vec<u64> = (0..64).map(|_| r.below(1000)).collect();
        let mut again = Rng::new(42);
        let vals2: Vec<u64> = (0..64).map(|_| again.below(1000)).collect();
        assert_eq!(vals, vals2);
        let distinct: std::collections::HashSet<_> = vals.iter().collect();
        assert!(distinct.len() > 32, "values look degenerate: {vals:?}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::new(1);
        for _ in 0..1000 {
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }
}
