//! Process-portable session snapshots.
//!
//! A [`Snapshot`] captures everything a
//! [`Session`](crate::Session) needs to continue a run at a
//! retired-instruction boundary:
//!
//! * the **CPU cursor** — pc, register files, retired count, and the
//!   materialised data-memory pages;
//! * the **detector** — the CLS entries (loop table) *and* the
//!   not-yet-delivered event chunk (a checkpoint may land mid-chunk;
//!   the buffered events travel with the snapshot so loop sinks receive
//!   them after resume exactly as they would have uninterrupted);
//! * one section per registered **checkpointable sink** — e.g. a
//!   [`StreamEngine`](loopspec_mt::StreamEngine)'s annotation state and
//!   decision core, or an [`EngineGrid`](loopspec_mt::EngineGrid)'s
//!   shared queue plus per-lane engine-core state.
//!
//! What a snapshot deliberately does **not** contain: the program (the
//! caller re-provides it — a snapshot is only meaningful against the
//! program it was taken from), sink *configuration* (policies, TU
//! counts, CLS capacity — reconstructed by the caller and verified via
//! configuration echoes), and per-instruction transients (a checkpoint
//! only lands between retirements, where none exist).
//!
//! [`Snapshot::to_bytes`] / [`Snapshot::from_bytes`] give a
//! deterministic, checksummed, std-only byte form, so snapshots can be
//! written to disk, shipped to another worker process, and compared
//! byte-for-byte (equal state ⇒ equal bytes).

use std::fmt;

use loopspec_core::snap::{fnv1a, Dec, Enc, SnapError};
use loopspec_core::{LoopEventSink, SnapshotState};
use loopspec_cpu::CpuError;

/// A sink that can be checkpointed by a [`Session`](crate::Session):
/// any [`LoopEventSink`] that also implements
/// [`SnapshotState`]. Blanket-implemented — implementing the two base
/// traits is enough.
///
/// In-tree implementors include
/// [`StreamEngine`](loopspec_mt::StreamEngine),
/// [`AnyStreamEngine`](loopspec_mt::AnyStreamEngine),
/// [`EngineGrid`](loopspec_mt::EngineGrid),
/// [`EventCollector`](loopspec_core::EventCollector),
/// [`LoopStats`](loopspec_core::LoopStats) and
/// [`SinkSet<S>`](crate::SinkSet) of any of these.
pub trait CheckpointSink: LoopEventSink + SnapshotState {}

impl<T: LoopEventSink + SnapshotState + ?Sized> CheckpointSink for T {}

/// Why a session operation failed: the one error type shared by every
/// [`Session`](crate::Session) entry point
/// (`run`/`advance`/`checkpoint`/`resume`) and the sharded drivers
/// built on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// A snapshot section failed to decode (truncated, corrupt, or
    /// taken from a differently configured object).
    Codec(SnapError),
    /// The CPU faulted while executing a session segment.
    Cpu(CpuError),
    /// The session's stream has already ended — there is nothing left
    /// to checkpoint.
    StreamEnded,
    /// [`Session::resume`](crate::Session::resume) was called on a
    /// session that has already executed instructions.
    AlreadyStarted,
    /// A registered sink was not checkpointable (registered via
    /// [`observe_loops`](crate::Session::observe_loops),
    /// [`observe_instrs`](crate::Session::observe_instrs) or
    /// [`observe_both`](crate::Session::observe_both) instead of
    /// [`observe_checkpointable`](crate::Session::observe_checkpointable)).
    NotCheckpointable,
    /// The snapshot holds a different number of sink sections than the
    /// session has checkpointable sinks registered.
    SinkCountMismatch {
        /// Sink sections in the snapshot.
        snapshot: usize,
        /// Checkpointable sinks registered in the session.
        session: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Codec(e) => write!(f, "snapshot codec error: {e}"),
            SnapshotError::Cpu(e) => write!(f, "cpu fault during session segment: {e}"),
            SnapshotError::StreamEnded => {
                write!(f, "the session's stream has already ended")
            }
            SnapshotError::AlreadyStarted => {
                write!(f, "resume requires a session that has not run yet")
            }
            SnapshotError::NotCheckpointable => write!(
                f,
                "every sink must be registered with observe_checkpointable"
            ),
            SnapshotError::SinkCountMismatch { snapshot, session } => write!(
                f,
                "snapshot has {snapshot} sink sections, session has {session} \
                 checkpointable sinks"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapError> for SnapshotError {
    fn from(e: SnapError) -> Self {
        SnapshotError::Codec(e)
    }
}

impl From<CpuError> for SnapshotError {
    fn from(e: CpuError) -> Self {
        SnapshotError::Cpu(e)
    }
}

/// A point-in-time capture of a [`Session`](crate::Session) at a
/// retired-instruction boundary. The module-level comments above
/// describe what is (and deliberately is not) inside.
///
/// Obtained from [`Session::checkpoint`](crate::Session::checkpoint);
/// consumed by [`Session::resume`](crate::Session::resume). Use
/// [`to_bytes`](Snapshot::to_bytes) /
/// [`from_bytes`](Snapshot::from_bytes) to cross a process boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    pub(crate) started: bool,
    pub(crate) instructions: u64,
    pub(crate) cpu: Vec<u8>,
    pub(crate) detector: Vec<u8>,
    pub(crate) sinks: Vec<Vec<u8>>,
}

/// Container magic: `LSNP` (loopspec snapshot).
const MAGIC: u32 = 0x4c53_4e50;
/// Container format version. v2: `StreamEngine` sink state gained the
/// oracle-feed fingerprint echo, so v1 checkpoints no longer decode —
/// reject them cleanly here instead of misparsing the sink bytes.
/// v3: the CPU cursor section grew a kernel pause cursor and the
/// container gained a kernel-registry echo (ids + body fingerprints),
/// so a checkpoint taken mid-`KernelCall` resumes only against the
/// same registered kernel bodies; v2 containers are rejected cleanly.
const VERSION: u32 = 3;

impl Snapshot {
    /// Stream position of the checkpoint: instructions retired before
    /// it. Resuming continues with instruction `instructions() + 1`.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Number of per-sink state sections (one per checkpointable sink
    /// registered when the checkpoint was taken; a resuming session
    /// must register the same number, in the same order).
    pub fn sink_sections(&self) -> usize {
        self.sinks.len()
    }

    /// Serializes the snapshot into a self-contained, checksummed byte
    /// container. The encoding is deterministic: checkpointing equal
    /// state twice yields equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.u32(MAGIC);
        enc.u32(VERSION);
        // Registry echo: a snapshot taken mid-kernel references body
        // instructions by (id, body pc) only, so decode refuses to
        // resume against a registry whose bodies differ.
        loopspec_isa::kernel::save_state(&mut enc);
        enc.bool(self.started);
        enc.u64(self.instructions);
        enc.bytes(&self.cpu);
        enc.bytes(&self.detector);
        enc.u64(self.sinks.len() as u64);
        for s in &self.sinks {
            enc.bytes(s);
        }
        let sum = fnv1a(enc.as_slice());
        enc.u64(sum);
        enc.into_bytes()
    }

    /// Decodes a container written by [`Snapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Codec`] when the magic, version or checksum do
    /// not match, or the container is truncated/corrupt.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < 8 {
            return Err(SnapError::Truncated { at: 0 }.into());
        }
        let (payload, sum) = bytes.split_at(bytes.len() - 8);
        let expect = u64::from_le_bytes(sum.try_into().expect("8 bytes"));
        if fnv1a(payload) != expect {
            return Err(SnapError::Corrupt {
                what: "snapshot checksum",
            }
            .into());
        }
        let mut dec = Dec::new(payload);
        if dec.u32()? != MAGIC {
            return Err(SnapError::Corrupt {
                what: "snapshot magic",
            }
            .into());
        }
        if dec.u32()? != VERSION {
            return Err(SnapError::Mismatch {
                what: "snapshot version",
            }
            .into());
        }
        loopspec_isa::kernel::check_state(&mut dec)?;
        let started = dec.bool()?;
        let instructions = dec.u64()?;
        let cpu = dec.bytes()?.to_vec();
        let detector = dec.bytes()?.to_vec();
        // Each sink section carries at least its 8-byte length prefix.
        let n = dec.count_elems(8)?;
        let mut sinks = Vec::with_capacity(n);
        for _ in 0..n {
            sinks.push(dec.bytes()?.to_vec());
        }
        dec.finish()?;
        Ok(Snapshot {
            started,
            instructions,
            cpu,
            detector,
            sinks,
        })
    }

    /// Writes one section with `save` and stores it.
    pub(crate) fn section(save: impl FnOnce(&mut Enc)) -> Vec<u8> {
        let mut enc = Enc::new();
        save(&mut enc);
        enc.into_bytes()
    }

    /// Decodes one section with `load`, requiring it to consume the
    /// section exactly.
    pub(crate) fn load_section(
        bytes: &[u8],
        load: impl FnOnce(&mut Dec<'_>) -> Result<(), SnapError>,
    ) -> Result<(), SnapshotError> {
        let mut dec = Dec::new(bytes);
        load(&mut dec)?;
        dec.finish()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            started: true,
            instructions: 12345,
            cpu: vec![1, 2, 3],
            detector: vec![4, 5],
            sinks: vec![vec![6], vec![], vec![7, 8, 9]],
        }
    }

    #[test]
    fn container_round_trips_and_is_deterministic() {
        let snap = sample();
        let bytes = snap.to_bytes();
        assert_eq!(bytes, snap.to_bytes(), "deterministic encoding");
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.instructions(), 12345);
        assert_eq!(back.sink_sections(), 3);
    }

    #[test]
    fn corruption_and_truncation_are_detected() {
        let mut bytes = sample().to_bytes();
        assert!(Snapshot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(Snapshot::from_bytes(&bytes[..4]).is_err());
        bytes[10] ^= 0xff;
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::Codec(SnapError::Corrupt {
                what: "snapshot checksum"
            }))
        );
    }

    #[test]
    fn wrong_magic_is_rejected_even_with_valid_checksum() {
        let mut enc = Enc::new();
        enc.u32(0x1234_5678);
        let sum = fnv1a(enc.as_slice());
        enc.u64(sum);
        let bytes = enc.into_bytes();
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::Codec(SnapError::Corrupt {
                what: "snapshot magic"
            }))
        );
    }

    #[test]
    fn errors_display_their_cause() {
        for (e, needle) in [
            (SnapshotError::StreamEnded, "ended"),
            (SnapshotError::AlreadyStarted, "has not run"),
            (SnapshotError::NotCheckpointable, "observe_checkpointable"),
            (
                SnapshotError::SinkCountMismatch {
                    snapshot: 2,
                    session: 3,
                },
                "2 sink sections",
            ),
            (
                SnapshotError::Codec(SnapError::Truncated { at: 0 }),
                "codec",
            ),
            (
                SnapshotError::Cpu(CpuError::MemoryLimit { pages: 1 }),
                "cpu fault",
            ),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
