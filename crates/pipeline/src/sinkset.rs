//! The monomorphic fan-out container.

use loopspec_core::{LoopEvent, LoopEventSink, SnapshotState};
use loopspec_obs as obs;

/// A homogeneous, **monomorphic** fan-out set: any number of same-type
/// sinks registered in a [`Session`](crate::Session) as a *single*
/// slot.
///
/// The session's fan-out crosses one `&mut dyn` boundary per registered
/// slot per chunk. For many same-shaped consumers (e.g.
/// [`loopspec_mt::AnyStreamEngine`]s), a `SinkSet` collapses that to
/// one virtual call per chunk for the whole set, and the inner loop
/// dispatches statically. See [`loopspec_core::sink`] for the batching
/// contract it relies on.
///
/// For the *experiment grid* specifically — many speculation-engine
/// configurations over one stream — prefer
/// [`loopspec_mt::EngineGrid`], which additionally shares the
/// annotation bookkeeping across all configurations instead of
/// repeating it per sink; `SinkSet` is the general-purpose container
/// for sinks that have no such shared work.
///
/// When the element type is checkpointable, so is the set: a `SinkSet`
/// registered via
/// [`observe_checkpointable`](crate::Session::observe_checkpointable)
/// contributes one snapshot section holding every element's state, and
/// restoring verifies the element count.
///
/// ```
/// use loopspec_core::CountingSink;
/// use loopspec_pipeline::{Session, SinkSet};
/// use loopspec_cpu::RunLimits;
/// use loopspec_asm::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// b.counted_loop(10, |b, _| b.work(3));
/// let program = b.finish()?;
///
/// let mut grid: SinkSet<CountingSink> =
///     (0..20).map(|_| CountingSink::default()).collect();
/// let mut session = Session::new();
/// session.observe_loops(&mut grid);
/// session.run(&program, RunLimits::default())?;
/// assert!(grid.iter().all(|c| c.events > 0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct SinkSet<S> {
    sinks: Vec<S>,
}

impl<S: LoopEventSink> SinkSet<S> {
    /// An empty set.
    pub fn new() -> Self {
        SinkSet { sinks: Vec::new() }
    }

    /// Wraps an existing vector of sinks (delivery order = vector
    /// order).
    pub fn from_vec(sinks: Vec<S>) -> Self {
        SinkSet { sinks }
    }

    /// Appends a sink.
    pub fn push(&mut self, sink: S) {
        self.sinks.push(sink);
    }

    /// Number of sinks in the set.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// `true` when the set holds no sinks.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// The sink at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&S> {
        self.sinks.get(index)
    }

    /// Iterates the sinks in delivery order.
    pub fn iter(&self) -> std::slice::Iter<'_, S> {
        self.sinks.iter()
    }

    /// Mutably iterates the sinks in delivery order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, S> {
        self.sinks.iter_mut()
    }

    /// Consumes the set, returning the sinks.
    pub fn into_inner(self) -> Vec<S> {
        self.sinks
    }
}

impl<S: LoopEventSink> FromIterator<S> for SinkSet<S> {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        SinkSet {
            sinks: iter.into_iter().collect(),
        }
    }
}

impl<'a, S: LoopEventSink> IntoIterator for &'a SinkSet<S> {
    type Item = &'a S;
    type IntoIter = std::slice::Iter<'a, S>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<S: LoopEventSink> LoopEventSink for SinkSet<S> {
    #[inline]
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        for s in &mut self.sinks {
            s.on_loop_event(ev);
        }
    }

    #[inline]
    fn on_loop_events(&mut self, events: &[LoopEvent]) {
        for s in &mut self.sinks {
            // Per-sink drain time: one span sample per sink per chunk
            // (a chunk is hundreds of events, so the clock reads are
            // off the per-event path; zero cost when telemetry is off).
            let _drain = obs::span!("sinkset.drain");
            s.on_loop_events(events);
        }
    }

    fn on_stream_end(&mut self, instructions: u64) {
        for s in &mut self.sinks {
            s.on_stream_end(instructions);
        }
    }
}

/// One section per element, in delivery order; the element count is
/// echoed and verified so a snapshot of an N-sink set can only restore
/// into an N-sink set.
impl<S: LoopEventSink + SnapshotState> SnapshotState for SinkSet<S> {
    fn save_state(&self, out: &mut loopspec_core::snap::Enc) {
        out.u64(self.sinks.len() as u64);
        for s in &self.sinks {
            s.save_state(out);
        }
    }

    fn load_state(
        &mut self,
        src: &mut loopspec_core::snap::Dec<'_>,
    ) -> Result<(), loopspec_core::snap::SnapError> {
        if src.u64()? != self.sinks.len() as u64 {
            return Err(loopspec_core::snap::SnapError::Mismatch {
                what: "sink set size",
            });
        }
        for s in &mut self.sinks {
            s.load_state(src)?;
        }
        Ok(())
    }
}
