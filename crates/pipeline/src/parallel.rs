//! The multi-threaded fan-out container.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use loopspec_core::{LoopEvent, LoopEventSink, SnapshotState};
use loopspec_obs as obs;

/// One instruction to a worker thread. The channel is the only
/// synchronization: commands are applied strictly in send order, so a
/// worker's sink always reflects a chunk-boundary prefix of the stream.
enum Cmd<S> {
    /// Apply a shared chunk of consecutive loop events.
    Chunk(Arc<[LoopEvent]>),
    /// Apply a single loop event.
    One(LoopEvent),
    /// The stream ended after this many committed instructions.
    End(u64),
    /// Hand the sink to the coordinator and block until it comes back.
    ///
    /// The worker sends its sink through the first channel and parks on
    /// the second. Because the command channel is FIFO, the leased sink
    /// has absorbed every event sent before the lease — exactly the
    /// serial [`SinkSet`](crate::SinkSet) state at that boundary. If
    /// the return channel is dropped instead, the worker exits and
    /// ownership stays with the coordinator (used by
    /// [`ParallelSinkSet::into_inner`]).
    Lease(mpsc::Sender<S>, mpsc::Receiver<S>),
}

fn worker_main<S: LoopEventSink>(mut sink: S, rx: mpsc::Receiver<Cmd<S>>) {
    for cmd in rx {
        match cmd {
            Cmd::Chunk(events) => sink.on_loop_events(&events),
            Cmd::One(ev) => sink.on_loop_event(&ev),
            Cmd::End(instructions) => sink.on_stream_end(instructions),
            Cmd::Lease(give, take) => {
                if give.send(sink).is_err() {
                    return;
                }
                match take.recv() {
                    Ok(s) => sink = s,
                    Err(_) => return,
                }
            }
        }
    }
}

/// One owned sink on one worker thread.
struct Worker<S> {
    tx: Option<mpsc::Sender<Cmd<S>>>,
    handle: Option<JoinHandle<()>>,
}

impl<S: LoopEventSink + Send + 'static> Worker<S> {
    fn spawn(sink: S) -> Self {
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || worker_main(sink, rx));
        Worker {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    fn send(&self, cmd: Cmd<S>) {
        self.tx
            .as_ref()
            .expect("worker channel open")
            .send(cmd)
            .expect("parallel sink worker disconnected");
    }

    /// Borrows the worker's sink on the coordinator thread; the worker
    /// blocks until the closure returns.
    fn lease<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        let (give_tx, give_rx) = mpsc::channel();
        let (take_tx, take_rx) = mpsc::channel();
        self.send(Cmd::Lease(give_tx, take_rx));
        // The recv is the deterministic join: how long the coordinator
        // waited here is the worker's lease-wait (backlog) time.
        let wait = obs::span!("parallel.lease_wait");
        let mut sink = give_rx.recv().expect("parallel sink worker disconnected");
        drop(wait);
        let out = f(&mut sink);
        take_tx
            .send(sink)
            .expect("parallel sink worker disconnected");
        out
    }

    /// Takes the worker's sink for good; the worker thread exits.
    fn take(&self) -> S {
        let (give_tx, give_rx) = mpsc::channel();
        let (take_tx, take_rx) = mpsc::channel();
        self.send(Cmd::Lease(give_tx, take_rx));
        let sink = give_rx.recv().expect("parallel sink worker disconnected");
        drop(take_tx);
        sink
    }
}

impl<S> Drop for Worker<S> {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            if let Err(payload) = handle.join() {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// A [`SinkSet`](crate::SinkSet) whose elements live on worker
/// threads: each registered sink is owned by its own thread, and every
/// event chunk the session fans out is broadcast (as one shared
/// allocation) to all of them.
///
/// The intended elements are *engine-lane subsets* of the experiment
/// grid — e.g. four [`loopspec_mt::EngineGrid`]s of five configurations
/// each instead of one grid of twenty — so the per-event engine work
/// runs on four cores while the CPU/detector pass stays on the caller's
/// thread.
///
/// ## Determinism
///
/// Each worker consumes its command channel in FIFO order and touches
/// only its own sink, so every sink sees the exact event sequence, in
/// the exact chunks, that it would see inside a serial
/// [`SinkSet`](crate::SinkSet). Reports, snapshot bytes, and
/// [`checkpoint`](crate::Session::checkpoint)/[`resume`](crate::Session::resume)
/// cut points are bit-identical to the serial container; only
/// wall-clock time changes. Reads ([`with_each`](Self::with_each),
/// [`save_state`](SnapshotState::save_state)) briefly *lease* each sink
/// back to the coordinator thread, which doubles as the deterministic
/// join: a lease observes the sink only after it has absorbed every
/// chunk sent before the lease.
///
/// Snapshot sections are byte-compatible with `SinkSet` of the same
/// element count, so a serial snapshot restores into a parallel set and
/// vice versa.
///
/// ```
/// use loopspec_core::CountingSink;
/// use loopspec_pipeline::{ParallelSinkSet, Session};
/// use loopspec_cpu::RunLimits;
/// use loopspec_asm::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// b.counted_loop(10, |b, _| b.work(3));
/// let program = b.finish()?;
///
/// let mut pool: ParallelSinkSet<CountingSink> =
///     (0..4).map(|_| CountingSink::default()).collect();
/// let mut session = Session::new();
/// session.observe_loops(&mut pool);
/// session.run(&program, RunLimits::default())?;
/// for counts in pool.into_inner() {
///     assert!(counts.events > 0);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ParallelSinkSet<S: LoopEventSink + Send + 'static> {
    workers: Vec<Worker<S>>,
}

impl<S: LoopEventSink + Send + 'static> ParallelSinkSet<S> {
    /// An empty set.
    pub fn new() -> Self {
        ParallelSinkSet {
            workers: Vec::new(),
        }
    }

    /// Spawns one worker per element of `sinks` (delivery order =
    /// vector order).
    pub fn from_vec(sinks: Vec<S>) -> Self {
        sinks.into_iter().collect()
    }

    /// Appends a sink, spawning its worker thread.
    pub fn push(&mut self, sink: S) {
        self.workers.push(Worker::spawn(sink));
    }

    /// Number of sinks (= worker threads) in the set.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// `true` when the set holds no sinks.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Visits every sink in delivery order on the calling thread,
    /// joining each worker at the current chunk boundary first. Use
    /// this to pull reports after a run.
    pub fn with_each<R>(&self, mut f: impl FnMut(usize, &mut S) -> R) -> Vec<R> {
        self.workers
            .iter()
            .enumerate()
            .map(|(i, w)| w.lease(|sink| f(i, sink)))
            .collect()
    }

    /// Consumes the set, returning the sinks and joining all workers.
    pub fn into_inner(mut self) -> Vec<S> {
        let workers = std::mem::take(&mut self.workers);
        workers.iter().map(Worker::take).collect()
    }
}

impl<S: LoopEventSink + Send + 'static> Default for ParallelSinkSet<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: LoopEventSink + Send + 'static> std::fmt::Debug for ParallelSinkSet<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelSinkSet")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl<S: LoopEventSink + Send + 'static> FromIterator<S> for ParallelSinkSet<S> {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        ParallelSinkSet {
            workers: iter.into_iter().map(Worker::spawn).collect(),
        }
    }
}

impl<S: LoopEventSink + Send + 'static> LoopEventSink for ParallelSinkSet<S> {
    #[inline]
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        for w in &self.workers {
            w.send(Cmd::One(*ev));
        }
    }

    #[inline]
    fn on_loop_events(&mut self, events: &[LoopEvent]) {
        if events.is_empty() {
            return;
        }
        let chunk: Arc<[LoopEvent]> = events.into();
        for w in &self.workers {
            w.send(Cmd::Chunk(chunk.clone()));
        }
    }

    fn on_stream_end(&mut self, instructions: u64) {
        for w in &self.workers {
            w.send(Cmd::End(instructions));
        }
    }
}

/// Byte-compatible with [`SinkSet`](crate::SinkSet): the element count
/// followed by one section per element, in delivery order. Saving and
/// loading lease each sink in turn, so both sides observe the
/// deterministic chunk-boundary state.
impl<S: LoopEventSink + SnapshotState + Send + 'static> SnapshotState for ParallelSinkSet<S> {
    fn save_state(&self, out: &mut loopspec_core::snap::Enc) {
        out.u64(self.workers.len() as u64);
        for w in &self.workers {
            w.lease(|sink| sink.save_state(out));
        }
    }

    fn load_state(
        &mut self,
        src: &mut loopspec_core::snap::Dec<'_>,
    ) -> Result<(), loopspec_core::snap::SnapError> {
        if src.u64()? != self.workers.len() as u64 {
            return Err(loopspec_core::snap::SnapError::Mismatch {
                what: "sink set size",
            });
        }
        for w in &self.workers {
            w.lease(|sink| sink.load_state(src))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SinkSet;
    use loopspec_core::snap::Enc;
    use loopspec_core::{CountingSink, EventCollector};

    fn ev(pos: u64) -> LoopEvent {
        LoopEvent::IterationStart {
            loop_id: loopspec_core::LoopId(loopspec_isa::Addr::new(4)),
            iter: 2,
            pos,
        }
    }

    #[test]
    fn broadcasts_chunks_to_every_worker() {
        let mut pool: ParallelSinkSet<CountingSink> =
            (0..3).map(|_| CountingSink::default()).collect();
        let events: Vec<LoopEvent> = (0..100).map(ev).collect();
        pool.on_loop_events(&events);
        pool.on_loop_event(&ev(100));
        pool.on_stream_end(500);
        for sink in pool.into_inner() {
            assert_eq!(sink.events, 101);
        }
    }

    #[test]
    fn matches_serial_sink_set_bytes() {
        let mut serial: SinkSet<EventCollector> =
            (0..4).map(|_| EventCollector::default()).collect();
        let mut pool: ParallelSinkSet<EventCollector> =
            (0..4).map(|_| EventCollector::default()).collect();
        let events: Vec<LoopEvent> = (0..256).map(ev).collect();
        for chunk in events.chunks(37) {
            serial.on_loop_events(chunk);
            pool.on_loop_events(chunk);
        }
        let (mut a, mut b) = (Enc::new(), Enc::new());
        serial.save_state(&mut a);
        pool.save_state(&mut b);
        assert_eq!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn lease_joins_at_the_current_boundary() {
        let mut pool: ParallelSinkSet<CountingSink> =
            (0..2).map(|_| CountingSink::default()).collect();
        let events: Vec<LoopEvent> = (0..64).map(ev).collect();
        pool.on_loop_events(&events);
        let counts = pool.with_each(|_, sink| sink.events);
        assert_eq!(counts, vec![64, 64]);
        pool.on_loop_events(&events);
        let counts = pool.with_each(|_, sink| sink.events);
        assert_eq!(counts, vec![128, 128]);
    }

    #[test]
    fn size_mismatch_is_rejected_on_load() {
        let serial: SinkSet<EventCollector> = (0..3).map(|_| EventCollector::default()).collect();
        let mut enc = Enc::new();
        serial.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut pool: ParallelSinkSet<EventCollector> =
            (0..2).map(|_| EventCollector::default()).collect();
        let mut dec = loopspec_core::snap::Dec::new(&bytes);
        assert!(pool.load_state(&mut dec).is_err());
    }
}
