//! The single-pass streaming session: one CPU run, one shared detector,
//! fan-out to any number of consumers — now resumable at any
//! retired-instruction boundary.

use std::any::Any;
use std::fmt;

use loopspec_core::snap::Enc;
use loopspec_core::{Cls, LoopDetector, SnapshotState};
use loopspec_cpu::{Cpu, DecodedProgram, Demand, InstrEvent, RunLimits, RunSummary, Tracer};
use loopspec_isa::ControlKind;

use loopspec_obs as obs;

use crate::snapshot::{CheckpointSink, Snapshot, SnapshotError};
use crate::LoopEventSink;

/// Drains the CPU's out-of-band execution telemetry (page-table MRU
/// hits, decoded-dispatch counters) into the global metrics registry.
/// Called at end of stream so steady-state retirement pays nothing; the
/// counters it feeds are purely observational and never loop back into
/// simulation state.
fn flush_cpu_telemetry(cpu: &mut Cpu) {
    let (mru_hits, mru_misses) = cpu.mem().take_mru_telemetry();
    if mru_hits > 0 {
        obs::counter("cpu_mru_hits").add(mru_hits);
    }
    if mru_misses > 0 {
        obs::counter("cpu_mru_misses").add(mru_misses);
    }
    let t = cpu.take_decoded_telemetry();
    if !t.is_empty() {
        obs::counter("cpu_superblock_runs").add(t.superblock_runs);
        obs::counter("cpu_superblock_instrs").add(t.superblock_instrs);
        obs::counter("cpu_fused_branch_pairs").add(t.fused_branch_pairs);
        if t.kernel_calls > 0 {
            obs::counter(obs::names::CPU_KERNEL_CALLS).add(t.kernel_calls);
            obs::counter(obs::names::CPU_KERNEL_INSTRS).add(t.kernel_instrs);
        }
        obs::histogram("cpu_superblock_len")
            .merge_prebucketed(&t.superblock_len_buckets, t.superblock_instrs);
        for (shape, hits) in t.fused_shapes() {
            obs::global()
                .counter(&format!("cpu_fused_{shape}"))
                .add(hits);
        }
    }
}

/// A consumer of both the instruction stream and the loop-event stream —
/// e.g. [`loopspec_dataspec::LiveInProfiler`], which charges live-ins per
/// instruction and rolls frames at iteration boundaries.
///
/// Blanket-implemented for everything that is both a [`Tracer`] and a
/// [`LoopEventSink`]; register with [`Session::observe_both`].
pub trait DualSink: Tracer + LoopEventSink {}

impl<T: Tracer + LoopEventSink> DualSink for T {}

/// An owned, checkpointable sink stored inside the session (no borrow,
/// no `'a`): the object-safe shape behind [`Session::add_sink`].
///
/// The `Any` hooks let callers recover the concrete sink afterwards via
/// [`Session::sink`] / [`Session::sink_mut`] / [`Session::into_sink`].
/// Blanket-implemented for every `CheckpointSink + Send + 'static` —
/// including `Box<dyn CheckpointSink + Send>` itself, so type-erased
/// sinks can be registered too.
trait OwnedSink: Send {
    fn ckpt(&self) -> &dyn CheckpointSink;
    fn ckpt_mut(&mut self) -> &mut dyn CheckpointSink;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<S: CheckpointSink + Send + 'static> OwnedSink for S {
    fn ckpt(&self) -> &dyn CheckpointSink {
        self
    }
    fn ckpt_mut(&mut self) -> &mut dyn CheckpointSink {
        self
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

enum Slot<'a> {
    Loops(&'a mut (dyn LoopEventSink + Send)),
    Instrs(&'a mut (dyn Tracer + Send)),
    Both(&'a mut (dyn DualSink + Send)),
    /// A loop sink whose state travels in session checkpoints. Delivery
    /// is identical to [`Slot::Loops`].
    Ckpt(&'a mut (dyn CheckpointSink + Send)),
    /// An owned checkpointable sink ([`Session::add_sink`]). Delivery
    /// and snapshot treatment are identical to [`Slot::Ckpt`].
    Owned(Box<dyn OwnedSink>),
}

/// Which CPU front-end a [`Session`] drives.
///
/// The decoded interpreter is the default: it lowers the program to
/// threaded code once per session (see
/// [`DecodedProgram`]) and is observably identical to the legacy
/// fetch-decode-execute loop — same events, same faults, same snapshot
/// bytes. The legacy interpreter stays available as a cross-check
/// oracle, selected per session with [`Session::set_interp`] or
/// globally with the `LOOPSPEC_INTERP=legacy` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Interp {
    /// Pre-decoded threaded-code dispatch with superinstruction
    /// fusion (the default).
    #[default]
    Decoded,
    /// The legacy per-instruction fetch-decode-execute loop.
    Legacy,
}

impl Interp {
    /// The interpreter selected by the `LOOPSPEC_INTERP` environment
    /// variable: `legacy` picks [`Interp::Legacy`], anything else (or
    /// unset) the default [`Interp::Decoded`].
    pub fn from_env() -> Interp {
        match std::env::var("LOOPSPEC_INTERP") {
            Ok(v) if v.eq_ignore_ascii_case("legacy") => Interp::Legacy,
            _ => Interp::Decoded,
        }
    }
}

impl fmt::Display for Interp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interp::Decoded => f.write_str("decoded"),
            Interp::Legacy => f.write_str("legacy"),
        }
    }
}

/// Result of a [`Session::run`] or [`Session::advance`].
#[derive(Debug, Clone, Copy)]
pub struct SessionSummary {
    /// The session's cumulative stream position: total committed
    /// instructions across all segments, including those executed
    /// before a checkpoint this session was resumed from. This is the
    /// stream length every sink is told at end-of-stream.
    pub instructions: u64,
    /// The CPU's summary of the **most recent** segment (its `retired`
    /// counts this segment only).
    pub run: RunSummary,
}

impl SessionSummary {
    /// `true` when the program halted of its own accord.
    pub fn halted(&self) -> bool {
        self.run.halted()
    }
}

/// A single-pass execution session: one CPU run, one shared loop
/// detector, any number of streaming consumers.
///
/// Register consumers with [`Session::observe_loops`] (loop events only),
/// [`Session::observe_instrs`] (retired instructions only),
/// [`Session::observe_both`], [`Session::observe_checkpointable`]
/// (loop events, with state captured by [`Session::checkpoint`]), or
/// [`Session::add_sink`] (like `observe_checkpointable` but **owned**:
/// the session holds the sink itself, so it is `'static + Send` when
/// all of its sinks are owned and can live in a job table); then
/// call [`Session::run`]. Per retired instruction the dispatch order is
/// fixed: first every instruction observer (in registration order), then
/// the loop events that instruction produced — so a [`DualSink`] sees a
/// closing branch *before* the iteration-end event it causes, matching
/// the bundled [`DataSpecProfiler`](loopspec_dataspec::DataSpecProfiler)
/// semantics.
///
/// **Chunked fan-out.** Pure loop sinks do not receive events one at a
/// time: the detector buffers them into fixed-size chunks (the session's
/// [`Cls`] chunk capacity, default
/// [`DEFAULT_EVENT_CHUNK`](loopspec_core::DEFAULT_EVENT_CHUNK) events)
/// and each full chunk is delivered with one
/// [`on_loop_events`](LoopEventSink::on_loop_events) call per sink, in
/// registration order. Within every sink the stream is identical —
/// same events, same order, positions non-decreasing — only the call
/// granularity changes (see the batching contract in
/// [`loopspec_core::sink`]). [`DualSink`]s still see each instruction's
/// events before the next retirement, as their analyses require.
///
/// At end of stream (halt, or [`Session::finish`] after fuel-bounded
/// segments) the detector is flushed, the final partial chunk is
/// delivered, and every loop/dual sink receives
/// [`on_stream_end`](LoopEventSink::on_stream_end) with the final
/// instruction count.
///
/// ## Segmented execution and checkpoints
///
/// [`Session::run`] executes a whole program in one call. The segmented
/// API splits the same stream across calls — and, via [`Snapshot`],
/// across *processes*:
///
/// * [`Session::advance`] runs up to `limits.max_instrs` further
///   instructions. A `halt` ends the stream exactly like `run`; fuel
///   exhaustion leaves the session paused at a retired-instruction
///   boundary.
/// * [`Session::checkpoint`] captures a paused session — CPU cursor,
///   detector (including the undelivered event chunk), and the state of
///   every checkpointable sink — as a [`Snapshot`].
/// * [`Session::resume`] restores a snapshot into a **fresh** session
///   with the same sinks registered in the same order.
/// * [`Session::finish`] ends the stream explicitly when no more
///   segments will run (fuel-truncated studies).
///
/// The `checkpoint → resume` round trip is exact: the resumed session's
/// sinks end the stream bit-identical to an uninterrupted run (enforced
/// by the `checkpoint_resume` and `sharded_equivalence` suites).
///
/// ```
/// use loopspec_asm::ProgramBuilder;
/// use loopspec_cpu::RunLimits;
/// use loopspec_mt::{StrPolicy, StreamEngine};
/// use loopspec_pipeline::{Session, Snapshot};
///
/// let mut b = ProgramBuilder::new();
/// b.counted_loop(200, |b, _| b.work(20));
/// let program = b.finish()?;
///
/// // First worker: run half the stream, checkpoint, serialize.
/// let mut engine = StreamEngine::new(StrPolicy::new(), 4);
/// let mut session = Session::new();
/// session.observe_checkpointable(&mut engine);
/// session.advance(&program, RunLimits::with_fuel(2_000))?;
/// let bytes = session.checkpoint()?.to_bytes();
///
/// // Second worker (possibly another process): resume and finish.
/// let mut engine2 = StreamEngine::new(StrPolicy::new(), 4);
/// let mut session2 = Session::new();
/// session2.observe_checkpointable(&mut engine2);
/// session2.resume(&Snapshot::from_bytes(&bytes)?)?;
/// let out = session2.advance(&program, RunLimits::default())?;
/// assert!(out.halted());
///
/// // Same report as one uninterrupted pass.
/// let mut reference = StreamEngine::new(StrPolicy::new(), 4);
/// let mut single = Session::new();
/// single.observe_checkpointable(&mut reference);
/// single.run(&program, RunLimits::default())?;
/// assert_eq!(engine2.report(), reference.report());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Session<'a> {
    cpu: Cpu,
    detector: LoopDetector,
    slots: Vec<Slot<'a>>,
    started: bool,
    ended: bool,
    interp: Interp,
    /// The threaded-code lowering of the last program this session
    /// advanced, rebuilt whenever the program changes.
    decoded: Option<DecodedProgram>,
}

impl fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("detector", &self.detector)
            .field("sinks", &self.slots.len())
            .field("position", &self.cpu.retired())
            .field("started", &self.started)
            .field("ended", &self.ended)
            .field("interp", &self.interp)
            .finish()
    }
}

impl Default for Session<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Session<'a> {
    /// A session with the paper's 16-entry CLS.
    pub fn new() -> Self {
        Session::with_cls(Cls::default())
    }

    /// A session detecting loops with a custom CLS (capacity ablations).
    pub fn with_cls(cls: Cls) -> Self {
        Session {
            cpu: Cpu::new(),
            detector: LoopDetector::new(cls),
            slots: Vec::new(),
            started: false,
            ended: false,
            interp: Interp::from_env(),
            decoded: None,
        }
    }

    /// The CPU front-end this session drives (see [`Interp`]).
    pub fn interp(&self) -> Interp {
        self.interp
    }

    /// Overrides the CPU front-end for this session — e.g. pinning
    /// [`Interp::Legacy`] to cross-check the decoded path.
    pub fn set_interp(&mut self, interp: Interp) -> &mut Self {
        self.interp = interp;
        self
    }

    /// Registers a loop-event consumer borrowed for the session's
    /// lifetime. Thin wrapper over the slot table shared with
    /// [`Session::add_sink`].
    pub fn observe_loops(&mut self, sink: &'a mut (dyn LoopEventSink + Send)) -> &mut Self {
        self.register(Slot::Loops(sink))
    }

    /// Registers a per-instruction consumer (borrowed).
    pub fn observe_instrs(&mut self, tracer: &'a mut (dyn Tracer + Send)) -> &mut Self {
        self.register(Slot::Instrs(tracer))
    }

    /// Registers a consumer of both streams (see [`DualSink`]; borrowed).
    pub fn observe_both(&mut self, sink: &'a mut (dyn DualSink + Send)) -> &mut Self {
        self.register(Slot::Both(sink))
    }

    /// Registers a loop-event consumer whose state is captured by
    /// [`Session::checkpoint`] and restored by [`Session::resume`].
    ///
    /// Event delivery is identical to [`Session::observe_loops`]; the
    /// only difference is that the sink contributes a state section to
    /// snapshots. A session can only be checkpointed when **every**
    /// registered sink was registered this way or via
    /// [`Session::add_sink`] — a snapshot missing one sink's state
    /// could not resume faithfully.
    pub fn observe_checkpointable(
        &mut self,
        sink: &'a mut (dyn CheckpointSink + Send),
    ) -> &mut Self {
        self.register(Slot::Ckpt(sink))
    }

    /// Registers an **owned** checkpointable sink: the session takes the
    /// sink by value, so a fully owned session is `'static`, [`Send`],
    /// and can live in a job table or move across threads — no borrow
    /// ties it to the caller's stack frame.
    ///
    /// Delivery and snapshot treatment are identical to
    /// [`Session::observe_checkpointable`] (which, like every
    /// `observe_*` method, is now a thin wrapper over the same slot
    /// table). `Box<dyn CheckpointSink + Send>` works as `S` too, for
    /// callers assembling sinks dynamically.
    ///
    /// Read the sink back with [`Session::sink`] / [`Session::sink_mut`]
    /// while the session lives, or [`Session::into_sink`] to take it out
    /// at the end.
    ///
    /// ```
    /// use loopspec_asm::ProgramBuilder;
    /// use loopspec_cpu::RunLimits;
    /// use loopspec_mt::{StrPolicy, StreamEngine};
    /// use loopspec_pipeline::Session;
    ///
    /// let mut b = ProgramBuilder::new();
    /// b.counted_loop(100, |b, _| b.work(10));
    /// let program = b.finish()?;
    ///
    /// let mut session = Session::new();
    /// session.add_sink(StreamEngine::new(StrPolicy::new(), 4));
    /// session.advance(&program, RunLimits::default())?;
    /// let engine: StreamEngine<StrPolicy> = session.into_sink(0).expect("slot 0");
    /// assert!(engine.report().is_some());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn add_sink<S: CheckpointSink + Send + 'static>(&mut self, sink: S) -> &mut Self {
        self.register(Slot::Owned(Box::new(sink)))
    }

    fn register(&mut self, slot: Slot<'a>) -> &mut Self {
        self.slots.push(slot);
        self
    }

    /// The owned sink registered at `index` (registration order, shared
    /// with the `observe_*` methods), if that slot is owned and of
    /// concrete type `S`. Borrowed slots return `None` — the caller
    /// still holds those.
    pub fn sink<S: 'static>(&self, index: usize) -> Option<&S> {
        match self.slots.get(index)? {
            Slot::Owned(s) => s.as_any().downcast_ref(),
            _ => None,
        }
    }

    /// Mutable twin of [`Session::sink`].
    pub fn sink_mut<S: 'static>(&mut self, index: usize) -> Option<&mut S> {
        match self.slots.get_mut(index)? {
            Slot::Owned(s) => s.as_any_mut().downcast_mut(),
            _ => None,
        }
    }

    /// Consumes the session and takes back the owned sink at `index`
    /// (`None` when the slot is borrowed or a different type). Usually
    /// called after the stream ended to extract results.
    pub fn into_sink<S: 'static>(self, index: usize) -> Option<S> {
        match self.slots.into_iter().nth(index)? {
            Slot::Owned(s) => s.into_any().downcast().ok().map(|b| *b),
            _ => None,
        }
    }

    /// Number of registered consumers.
    pub fn sinks(&self) -> usize {
        self.slots.len()
    }

    /// The session's stream position: committed instructions so far
    /// (including segments executed before a resumed checkpoint).
    pub fn position(&self) -> u64 {
        self.cpu.retired()
    }

    /// `true` once the stream has ended (halt or [`Session::finish`]):
    /// sinks have received their end-of-stream callback and no further
    /// segments or checkpoints are possible.
    pub fn is_ended(&self) -> bool {
        self.ended
    }

    /// Executes `program` to completion in one pass — convenience for
    /// [`Session::advance`] + [`Session::finish`].
    ///
    /// Consumes the session: the sinks have received their end-of-stream
    /// callback and the borrows are released, so results can be read
    /// directly from the sink objects afterwards. Fuel exhaustion ends
    /// the stream too (open loop executions are closed at the cut,
    /// exactly like the batch annotator does for truncated traces); use
    /// the segmented API when the run should instead pause.
    ///
    /// # Errors
    ///
    /// Propagates any CPU fault as [`SnapshotError::Cpu`] — every
    /// session entry point ([`run`](Session::run),
    /// [`advance`](Session::advance), [`checkpoint`](Session::checkpoint),
    /// [`resume`](Session::resume)) shares the one [`SnapshotError`]
    /// type, which the `loopspec` facade absorbs into `loopspec::Error`.
    /// Sinks see the partial stream but no end-of-stream callback in
    /// that case.
    ///
    /// # Panics
    ///
    /// Panics if the stream has already ended (a session that halted
    /// during an earlier [`Session::advance`] cannot run again).
    pub fn run(
        mut self,
        program: &loopspec_asm::Program,
        limits: RunLimits,
    ) -> Result<SessionSummary, SnapshotError> {
        let summary = self.advance(program, limits)?;
        if !self.ended {
            self.end_stream();
        }
        Ok(summary)
    }

    /// Runs up to `limits.max_instrs` further instructions of `program`,
    /// feeding every registered consumer.
    ///
    /// The first call starts at the program's entry point; later calls
    /// (or calls after [`Session::resume`]) continue where the previous
    /// segment stopped. If the program halts, the stream ends (detector
    /// flushed, final chunk delivered,
    /// [`on_stream_end`](LoopEventSink::on_stream_end) fired). If the
    /// fuel runs out first, the session pauses at a retirement boundary
    /// — ready for another `advance`, or for [`Session::checkpoint`].
    ///
    /// # Errors
    ///
    /// Propagates any [`CpuError`](loopspec_cpu::CpuError) as
    /// [`SnapshotError::Cpu`].
    ///
    /// # Panics
    ///
    /// Panics if the stream has already ended.
    pub fn advance(
        &mut self,
        program: &loopspec_asm::Program,
        limits: RunLimits,
    ) -> Result<SessionSummary, SnapshotError> {
        assert!(!self.ended, "Session::advance after the stream ended");
        let _span = obs::span!("session.advance");
        if self.interp == Interp::Decoded && !matches!(&self.decoded, Some(d) if d.matches(program))
        {
            self.decoded = Some(DecodedProgram::new(program));
        }
        let fresh = !self.started;
        self.started = true;
        let run = {
            let Session {
                cpu,
                detector,
                slots,
                interp,
                decoded,
                ..
            } = self;
            let instr_observers = slots
                .iter()
                .any(|s| matches!(s, Slot::Instrs(_) | Slot::Both(_)));
            let mut dispatch = Dispatch {
                detector,
                slots,
                instr_observers,
                chunks: obs::counter("pipeline_chunks_delivered"),
            };
            match (*interp, decoded.as_ref()) {
                (Interp::Decoded, Some(dp)) => {
                    if fresh {
                        cpu.run_decoded(dp, &mut dispatch, limits)?
                    } else {
                        cpu.resume_decoded(dp, &mut dispatch, limits)?
                    }
                }
                _ => {
                    if fresh {
                        cpu.run(program, &mut dispatch, limits)?
                    } else {
                        cpu.resume(program, &mut dispatch, limits)?
                    }
                }
            }
        };
        if run.halted() {
            self.end_stream();
        }
        Ok(SessionSummary {
            instructions: self.cpu.retired(),
            run,
        })
    }

    /// Ends the stream without executing further instructions: closes
    /// still-open loop executions at the current position, delivers the
    /// final partial chunk, and fires
    /// [`on_stream_end`](LoopEventSink::on_stream_end) on every
    /// loop/dual sink. Idempotent. Returns the final instruction count.
    pub fn finish(&mut self) -> u64 {
        if !self.ended {
            self.end_stream();
        }
        self.cpu.retired()
    }

    /// Flush + final chunk + end-of-stream callbacks (halt or explicit
    /// finish). A fuel-exhausted `advance` deliberately does **not**
    /// call this: the partial chunk stays buffered in the detector,
    /// which is what lets a checkpoint land mid-chunk.
    fn end_stream(&mut self) {
        let instructions = self.cpu.retired();
        flush_cpu_telemetry(&mut self.cpu);
        // Dual sinks have already seen every currently buffered event
        // live (they get each instruction's fresh events immediately);
        // loop sinks have not. Flush-produced closes are new to both.
        let seen = self.detector.buffered().len();
        self.detector.flush_buffered(instructions);
        let chunk = self.detector.buffered();
        let trailing = &chunk[seen..];
        if !chunk.is_empty() {
            obs::counter("pipeline_chunks_delivered").inc();
        }
        for slot in self.slots.iter_mut() {
            match slot {
                Slot::Loops(s) => {
                    if !chunk.is_empty() {
                        s.on_loop_events(chunk);
                    }
                    s.on_stream_end(instructions);
                }
                Slot::Ckpt(s) => {
                    if !chunk.is_empty() {
                        s.on_loop_events(chunk);
                    }
                    s.on_stream_end(instructions);
                }
                Slot::Owned(s) => {
                    let s = s.ckpt_mut();
                    if !chunk.is_empty() {
                        s.on_loop_events(chunk);
                    }
                    s.on_stream_end(instructions);
                }
                Slot::Both(d) => {
                    if !trailing.is_empty() {
                        d.on_loop_events(trailing);
                    }
                    d.on_stream_end(instructions);
                }
                Slot::Instrs(_) => {}
            }
        }
        self.detector.clear_buffered();
        self.ended = true;
    }

    /// Captures the session at the current retired-instruction boundary
    /// as a [`Snapshot`]: CPU cursor, detector state (CLS entries plus
    /// the not-yet-delivered event chunk), and one state section per
    /// registered sink.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::StreamEnded`] after the stream ended;
    /// [`SnapshotError::NotCheckpointable`] when any sink was registered
    /// via a non-checkpointable `observe_*` method (dual and
    /// instruction sinks interleave with the instruction stream and do
    /// not currently serialize).
    pub fn checkpoint(&self) -> Result<Snapshot, SnapshotError> {
        if self.ended {
            return Err(SnapshotError::StreamEnded);
        }
        let mut sinks = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            match slot {
                Slot::Ckpt(s) => sinks.push(Snapshot::section(|enc| s.save_state(enc))),
                Slot::Owned(s) => sinks.push(Snapshot::section(|enc| s.ckpt().save_state(enc))),
                _ => return Err(SnapshotError::NotCheckpointable),
            }
        }
        let mut cpu = Enc::new();
        self.cpu.save_state(&mut cpu);
        let mut detector = Enc::new();
        self.detector.save_state(&mut detector);
        Ok(Snapshot {
            started: self.started,
            instructions: self.cpu.retired(),
            cpu: cpu.into_bytes(),
            detector: detector.into_bytes(),
            sinks,
        })
    }

    /// Restores `snapshot` into this session, which must not have run
    /// yet and must have the same checkpointable sinks registered, in
    /// the same order and configuration, as the session the snapshot was
    /// taken from. A following [`Session::advance`] continues the
    /// stream at instruction `snapshot.instructions() + 1`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::AlreadyStarted`] when this session has executed
    /// instructions; [`SnapshotError::NotCheckpointable`] /
    /// [`SnapshotError::SinkCountMismatch`] when the registered sinks
    /// cannot absorb the snapshot's sections;
    /// [`SnapshotError::Codec`] when a section fails to decode (e.g. a
    /// sink was reconstructed with a different configuration).
    pub fn resume(&mut self, snapshot: &Snapshot) -> Result<(), SnapshotError> {
        if self.started || self.ended {
            return Err(SnapshotError::AlreadyStarted);
        }
        let ckpt = self
            .slots
            .iter()
            .filter(|s| matches!(s, Slot::Ckpt(_) | Slot::Owned(_)))
            .count();
        if ckpt != self.slots.len() {
            return Err(SnapshotError::NotCheckpointable);
        }
        if ckpt != snapshot.sinks.len() {
            return Err(SnapshotError::SinkCountMismatch {
                snapshot: snapshot.sinks.len(),
                session: ckpt,
            });
        }
        Snapshot::load_section(&snapshot.cpu, |dec| self.cpu.load_state(dec))?;
        Snapshot::load_section(&snapshot.detector, |dec| self.detector.load_state(dec))?;
        for (slot, bytes) in self.slots.iter_mut().zip(&snapshot.sinks) {
            match slot {
                Slot::Ckpt(s) => Snapshot::load_section(bytes, |dec| s.load_state(dec))?,
                Slot::Owned(s) => {
                    Snapshot::load_section(bytes, |dec| s.ckpt_mut().load_state(dec))?
                }
                _ => unreachable!(),
            }
        }
        self.started = snapshot.started;
        Ok(())
    }
}

/// The internal fan-out tracer: one detector, many consumers.
///
/// Loop events are delivered on the **chunked** path: the detector
/// buffers them into its internal chunk (capacity from the session's
/// [`Cls`], default
/// [`DEFAULT_EVENT_CHUNK`](loopspec_core::DEFAULT_EVENT_CHUNK)) and each
/// full chunk is fanned out with a single
/// [`on_loop_events`](LoopEventSink::on_loop_events) call per loop sink
/// — one virtual call per chunk per sink instead of one per event per
/// sink. [`DualSink`]s are the exception: their analysis interleaves the
/// instruction and event streams (an instruction must be charged to the
/// iteration that was open when it retired), so they receive each
/// instruction's fresh events immediately, before the next retirement.
struct Dispatch<'s, 'a> {
    detector: &'s mut LoopDetector,
    slots: &'s mut Vec<Slot<'a>>,
    /// Whether any slot observes the instruction stream — when false
    /// (the common grid case: loop sinks only) the per-retirement slot
    /// walk is skipped entirely.
    instr_observers: bool,
    /// Full event chunks fanned out so far (out-of-band telemetry; the
    /// handle is cached here so the hot path never touches the registry
    /// lock).
    chunks: obs::Counter,
}

impl Tracer for Dispatch<'_, '_> {
    /// The detector itself reads only always-populated event fields
    /// (pc, seq, control outcome), so the session's demand is exactly
    /// the union of its instruction observers' demands — an all-loop
    /// grid session lets the interpreter skip event payload assembly
    /// entirely.
    fn demand(&self) -> Demand {
        self.slots.iter().fold(Demand::NONE, |d, slot| match slot {
            Slot::Instrs(t) => d.union(t.demand()),
            Slot::Both(b) => d.union(b.demand()),
            Slot::Loops(_) | Slot::Ckpt(_) | Slot::Owned(_) => d,
        })
    }

    fn on_retire(&mut self, ev: &InstrEvent) {
        if self.instr_observers {
            for slot in self.slots.iter_mut() {
                match slot {
                    Slot::Instrs(t) => t.on_retire(ev),
                    Slot::Both(d) => d.on_retire(ev),
                    Slot::Loops(_) | Slot::Ckpt(_) | Slot::Owned(_) => {}
                }
            }
        }
        if matches!(ev.control.kind, ControlKind::None) {
            return;
        }
        let before = self.detector.buffered().len();
        let full = self.detector.process_buffered(ev);
        if self.instr_observers {
            let fresh = &self.detector.buffered()[before..];
            if !fresh.is_empty() {
                for slot in self.slots.iter_mut() {
                    if let Slot::Both(d) = slot {
                        d.on_loop_events(fresh);
                    }
                }
            }
        }
        if full {
            self.chunks.inc();
            let chunk = self.detector.buffered();
            for slot in self.slots.iter_mut() {
                match slot {
                    Slot::Loops(s) => s.on_loop_events(chunk),
                    Slot::Ckpt(s) => s.on_loop_events(chunk),
                    Slot::Owned(s) => s.ckpt_mut().on_loop_events(chunk),
                    Slot::Instrs(_) | Slot::Both(_) => {}
                }
            }
            self.detector.clear_buffered();
        }
    }
}
