//! Sharded replay: one workload trace split into K contiguous,
//! checkpoint-linked shards.
//!
//! This is the distribution story the checkpoint subsystem exists for
//! (and the shape of Prophet-style CMP execution: one speculative
//! instruction stream split across cores with small per-core state
//! handoffs). A [`ShardedRun`] cuts a run's instruction budget into K
//! equal contiguous fuel slices; each shard constructs a **fresh** sink,
//! restores the predecessor's [`Snapshot`] from *bytes* (so nothing
//! survives a shard except the serialized handoff — exactly what
//! crossing a process boundary requires), advances one slice, and
//! either hands a new snapshot to its successor or ends the stream.
//!
//! The merged result is **bit-identical** to a single-pass
//! [`Session::run`] — the `sharded_equivalence` suite proves it for
//! K ∈ {2, 4, 8} over all 18 workloads. What sharding buys is not
//! speed on one machine (shards are serially dependent) but the
//! ability to distribute one huge trace across workers — bounded
//! per-worker runtime, restartable segments, and a snapshot trail for
//! free.

use loopspec_asm::Program;
use loopspec_cpu::RunLimits;

use crate::session::{Session, SessionSummary};
use crate::snapshot::{CheckpointSink, Snapshot, SnapshotError};

/// Result of a sharded run.
#[derive(Debug)]
pub struct ShardedOutcome<S> {
    /// The final shard's sink, after end-of-stream — holds the merged
    /// result (reports, statistics) of the whole run.
    pub sink: S,
    /// The final shard's session summary (`instructions` is the whole
    /// run's count).
    pub summary: SessionSummary,
    /// Shards actually executed (fewer than configured when the program
    /// halts early).
    pub shards_run: usize,
    /// Total serialized snapshot bytes handed between shards.
    pub handoff_bytes: u64,
}

/// Splits one run into K contiguous shards linked by serialized
/// [`Snapshot`]s; the module-level comments above describe the
/// execution model.
///
/// `limits.max_instrs` is the **total** instruction budget; it is cut
/// into K equal fuel slices (the last one possibly short). A program
/// that halts before the budget simply ends in an earlier shard; a
/// program still running when the budget is exhausted is finished
/// explicitly, exactly like a fuel-truncated [`Session::run`].
///
/// ```
/// use loopspec_asm::ProgramBuilder;
/// use loopspec_cpu::RunLimits;
/// use loopspec_mt::{StrPolicy, StreamEngine};
/// use loopspec_pipeline::{Session, ShardedRun};
///
/// let mut b = ProgramBuilder::new();
/// b.counted_loop(300, |b, _| b.work(15));
/// let program = b.finish()?;
///
/// // Reference: one uninterrupted pass.
/// let mut reference = StreamEngine::new(StrPolicy::new(), 4);
/// let mut session = Session::new();
/// session.observe_checkpointable(&mut reference);
/// let single = session.run(&program, RunLimits::default())?;
///
/// // The same run as 4 checkpoint-linked shards.
/// let sharded = ShardedRun::new(4).run(&program, RunLimits::with_fuel(single.instructions), || {
///     StreamEngine::new(StrPolicy::new(), 4)
/// })?;
/// assert_eq!(sharded.shards_run, 4);
/// assert_eq!(sharded.sink.report(), reference.report());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ShardedRun {
    shards: usize,
}

impl ShardedRun {
    /// A run split into `shards` contiguous slices.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a run needs at least one shard");
        ShardedRun { shards }
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Executes `program` shard by shard **in this thread**, handing
    /// serialized snapshots between shards. `make_sink` constructs each
    /// shard's fresh sink (same configuration every time — snapshot
    /// loading verifies this).
    ///
    /// # Errors
    ///
    /// Propagates CPU faults ([`SnapshotError::Cpu`]) and
    /// checkpoint/restore failures.
    pub fn run<S, F>(
        &self,
        program: &Program,
        limits: RunLimits,
        mut make_sink: F,
    ) -> Result<ShardedOutcome<S>, SnapshotError>
    where
        S: CheckpointSink,
        F: FnMut() -> S,
    {
        let mut handoff: Option<Vec<u8>> = None;
        let mut handoff_bytes = 0u64;
        for shard in 0..self.shards {
            let mut sink = make_sink();
            let (summary, done) = {
                let mut session = Session::new();
                session.observe_checkpointable(&mut sink);
                let step = self.run_shard(program, limits, shard, handoff.take(), &mut session)?;
                if let Some(bytes) = step.handoff {
                    handoff_bytes += bytes.len() as u64;
                    handoff = Some(bytes);
                }
                (step.summary, step.done)
            };
            if done {
                return Ok(ShardedOutcome {
                    sink,
                    summary,
                    shards_run: shard + 1,
                    handoff_bytes,
                });
            }
        }
        unreachable!("the final shard always ends the stream")
    }

    /// Executes `program` with each shard on its **own worker thread**,
    /// streaming the serialized snapshots through channels — the
    /// pipeline-style handoff a distributed deployment would use (the
    /// shards remain serially dependent; what moves between workers is
    /// only the snapshot bytes).
    ///
    /// Produces exactly the same outcome as [`ShardedRun::run`].
    ///
    /// # Errors
    ///
    /// Propagates CPU faults ([`SnapshotError::Cpu`]) and
    /// checkpoint/restore failures from whichever worker hit them.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panics.
    pub fn run_on_workers<S, F>(
        &self,
        program: &Program,
        limits: RunLimits,
        make_sink: F,
    ) -> Result<ShardedOutcome<S>, SnapshotError>
    where
        S: CheckpointSink + Send,
        F: Fn() -> S + Sync,
    {
        use std::sync::mpsc;

        /// What travels between consecutive workers.
        enum Baton {
            /// Run your shard, resuming from these snapshot bytes (or
            /// from scratch for the first shard).
            Run(Option<Vec<u8>>),
            /// The stream ended upstream; do nothing.
            Done,
        }

        type WorkerResult<S> = Result<(u64, Option<(S, SessionSummary, usize)>), SnapshotError>;

        let shards = self.shards;
        let make_sink = &make_sink;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shards);
            let (first_tx, mut rx) = mpsc::channel::<Baton>();
            first_tx.send(Baton::Run(None)).expect("receiver alive");
            drop(first_tx);
            for shard in 0..shards {
                let (tx_next, rx_next) = mpsc::channel::<Baton>();
                let this = *self;
                let rx_cur = std::mem::replace(&mut rx, rx_next);
                handles.push(scope.spawn(move || -> WorkerResult<S> {
                    // A closed channel means an upstream worker errored
                    // out; its own result carries the error.
                    let baton = rx_cur.recv().unwrap_or(Baton::Done);
                    let Baton::Run(bytes) = baton else {
                        let _ = tx_next.send(Baton::Done);
                        return Ok((0, None));
                    };
                    let mut sink = make_sink();
                    let step = {
                        let mut session = Session::new();
                        session.observe_checkpointable(&mut sink);
                        this.run_shard(program, limits, shard, bytes, &mut session)?
                    };
                    if step.done {
                        let _ = tx_next.send(Baton::Done);
                        Ok((0, Some((sink, step.summary, shard + 1))))
                    } else {
                        let bytes = step.handoff.expect("non-final shard hands off");
                        let sent = bytes.len() as u64;
                        let _ = tx_next.send(Baton::Run(Some(bytes)));
                        Ok((sent, None))
                    }
                }));
            }
            drop(rx);

            let mut handoff_bytes = 0u64;
            let mut outcome = None;
            for handle in handles {
                let (sent, done) = handle.join().expect("worker thread panicked")?;
                handoff_bytes += sent;
                if done.is_some() {
                    outcome = done;
                }
            }
            let (sink, summary, shards_run) = outcome.expect("one worker ends the stream");
            Ok(ShardedOutcome {
                sink,
                summary,
                shards_run,
                handoff_bytes,
            })
        })
    }

    /// Runs one shard inside `session`: resume (if not the first),
    /// advance one fuel slice, then halt-end / finish / checkpoint as
    /// appropriate.
    fn run_shard(
        &self,
        program: &Program,
        limits: RunLimits,
        shard: usize,
        handoff: Option<Vec<u8>>,
        session: &mut Session<'_>,
    ) -> Result<ShardStep, SnapshotError> {
        let per_shard = limits.max_instrs.div_ceil(self.shards as u64);
        let executed = match handoff {
            Some(bytes) => {
                let snapshot = Snapshot::from_bytes(&bytes)?;
                session.resume(&snapshot)?;
                snapshot.instructions()
            }
            None => 0,
        };
        let budget = per_shard.min(limits.max_instrs - executed);
        let summary = session.advance(
            program,
            RunLimits {
                max_instrs: budget,
                ..limits
            },
        )?;
        let budget_exhausted =
            shard + 1 == self.shards || summary.instructions >= limits.max_instrs;
        if session.is_ended() {
            // The program halted inside this shard.
            Ok(ShardStep {
                summary,
                done: true,
                handoff: None,
            })
        } else if budget_exhausted {
            session.finish();
            Ok(ShardStep {
                summary,
                done: true,
                handoff: None,
            })
        } else {
            let bytes = session.checkpoint()?.to_bytes();
            Ok(ShardStep {
                summary,
                done: false,
                handoff: Some(bytes),
            })
        }
    }
}

/// One shard's outcome inside the driver loops.
struct ShardStep {
    summary: SessionSummary,
    done: bool,
    handoff: Option<Vec<u8>>,
}
