//! Sharded replay: one workload trace split into contiguous,
//! checkpoint-linked shards.
//!
//! This is the distribution story the checkpoint subsystem exists for
//! (and the shape of Prophet-style CMP execution: one speculative
//! instruction stream split across cores with small per-core state
//! handoffs). The module has two layers:
//!
//! * [`Plan`] — the **driver-agnostic scheduling core**: how a run's
//!   instruction budget is cut into shard fuel slices ([`Plan::split`]
//!   into K equal slices, or [`Plan::sliced`] fixed-fuel slices until
//!   the program halts), and [`Plan::step`] — execute exactly one shard
//!   inside a [`Session`]: restore the predecessor's snapshot *from
//!   bytes* (so nothing survives a shard except the serialized handoff
//!   — exactly what crossing a process boundary requires), advance one
//!   slice, and either hand a new snapshot to the successor or end the
//!   stream. Every shard driver in the workspace — [`ShardedRun::run`]
//!   in-thread, [`ShardedRun::run_on_workers`] on worker threads, and
//!   the multi-process `loopspec-dist` coordinator/worker pair — runs
//!   shards through this one implementation.
//! * [`ShardedRun`] — the packaged single-machine driver over a `Plan`.
//!
//! The merged result is **bit-identical** to a single-pass
//! [`Session::run`] — the `sharded_equivalence` suite proves it for
//! K ∈ {2, 4, 8} and the `distributed_equivalence` suite for worker
//! *processes*, over all 18 workloads. What sharding buys is not speed
//! on one machine (shards are serially dependent) but the ability to
//! distribute one huge trace across workers — bounded per-worker
//! runtime, restartable segments, and a snapshot trail for free.

use loopspec_asm::Program;
use loopspec_core::snap::{Dec, Enc, SnapError};
use loopspec_cpu::RunLimits;

use crate::session::{Session, SessionSummary};
use crate::snapshot::{CheckpointSink, Snapshot, SnapshotError};

/// Result of a sharded run.
#[derive(Debug)]
pub struct ShardedOutcome<S> {
    /// The final shard's sink, after end-of-stream — holds the merged
    /// result (reports, statistics) of the whole run.
    pub sink: S,
    /// The final shard's session summary (`instructions` is the whole
    /// run's count).
    pub summary: SessionSummary,
    /// Shards actually executed (fewer than configured when the program
    /// halts early).
    pub shards_run: usize,
    /// Total serialized snapshot bytes handed between shards.
    pub handoff_bytes: u64,
}

/// One shard's outcome: the segment summary plus either the serialized
/// snapshot for the successor shard or — when the stream ended inside
/// this shard — nothing.
#[derive(Debug)]
pub struct ShardStep {
    /// The shard's session summary (`instructions` is cumulative).
    pub summary: SessionSummary,
    /// Snapshot bytes for the next shard; `None` when the stream ended
    /// (the program halted, or this was the final shard and the budget
    /// was exhausted).
    pub handoff: Option<Vec<u8>>,
}

impl ShardStep {
    /// `true` when the stream ended inside this shard.
    pub fn done(&self) -> bool {
        self.handoff.is_none()
    }
}

/// How a run's instruction budget is cut into shard fuel slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slicing {
    /// K equal contiguous slices of the total budget (the last possibly
    /// short); shard K−1 ends the stream explicitly.
    Split { shards: usize },
    /// Fixed fuel per shard; the chain continues until the program
    /// halts (or the total budget runs out). The shard count is
    /// emergent — the shape a job queue wants when the trace length is
    /// not known up front.
    Sliced { fuel: u64 },
}

/// The driver-agnostic shard scheduling core: budget slicing plus the
/// single-shard execution step shared by every shard driver (the
/// module-level comments above describe the execution model).
///
/// A `Plan` is pure scheduling state — `Copy`, no I/O — so in-thread
/// loops, worker threads, and a multi-process coordinator can all
/// consult the same instance (or equal copies) of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Plan {
    slicing: Slicing,
}

impl Plan {
    /// A plan cutting the total budget into `shards` equal contiguous
    /// fuel slices.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn split(shards: usize) -> Self {
        assert!(shards > 0, "a run needs at least one shard");
        Plan {
            slicing: Slicing::Split { shards },
        }
    }

    /// A plan giving every shard a fixed `fuel` slice, chaining until
    /// the program halts (or the total budget is exhausted).
    ///
    /// # Panics
    ///
    /// Panics if `fuel == 0`.
    pub fn sliced(fuel: u64) -> Self {
        assert!(fuel > 0, "a shard needs at least one instruction of fuel");
        Plan {
            slicing: Slicing::Sliced { fuel },
        }
    }

    /// Appends the plan's deterministic wire form to `out` — so a job
    /// spec carrying a `Plan` can cross a process boundary (and join a
    /// cache key) like every other snapshot section.
    pub fn save(&self, out: &mut Enc) {
        match self.slicing {
            Slicing::Split { shards } => {
                out.u8(0);
                out.u64(shards as u64);
            }
            Slicing::Sliced { fuel } => {
                out.u8(1);
                out.u64(fuel);
            }
        }
    }

    /// Reads a plan written by [`Plan::save`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated input, an unknown slicing tag, or a
    /// zero shard count / fuel slice (which the constructors forbid).
    pub fn load(src: &mut Dec<'_>) -> Result<Plan, SnapError> {
        let tag = src.u8()?;
        let value = src.u64()?;
        match tag {
            0 if value > 0 => Ok(Plan::split(value as usize)),
            1 if value > 0 => Ok(Plan::sliced(value)),
            0 | 1 => Err(SnapError::Corrupt {
                what: "zero plan slicing value",
            }),
            _ => Err(SnapError::Corrupt {
                what: "plan slicing tag",
            }),
        }
    }

    /// Configured shard count, when fixed ([`Plan::split`]); `None` for
    /// a [`Plan::sliced`] plan, whose shard count is emergent.
    pub fn shards(&self) -> Option<usize> {
        match self.slicing {
            Slicing::Split { shards } => Some(shards),
            Slicing::Sliced { .. } => None,
        }
    }

    /// The fuel budget of the next shard when `executed` of the
    /// `total` instruction budget has already retired: one slice,
    /// clamped to what remains.
    pub fn budget(&self, total: u64, executed: u64) -> u64 {
        let slice = match self.slicing {
            Slicing::Split { shards } => total.div_ceil(shards as u64),
            Slicing::Sliced { fuel } => fuel,
        };
        slice.min(total.saturating_sub(executed))
    }

    /// `true` when shard `shard` must end the stream even if the
    /// program is still running after its slice (the final slice of a
    /// [`Plan::split`] — exactly like a fuel-truncated
    /// [`Session::run`]).
    pub fn is_last(&self, shard: usize) -> bool {
        match self.slicing {
            Slicing::Split { shards } => shard + 1 == shards,
            Slicing::Sliced { .. } => false,
        }
    }

    /// Executes one shard inside `session` (fresh, with its sinks
    /// registered): resume from `handoff` (if not the first shard),
    /// advance this shard's fuel slice, then halt-end / finish /
    /// checkpoint as appropriate. `limits.max_instrs` is the **total**
    /// budget of the whole run.
    ///
    /// # Errors
    ///
    /// Propagates CPU faults ([`SnapshotError::Cpu`]) and
    /// checkpoint/restore failures.
    pub fn step(
        &self,
        program: &Program,
        limits: RunLimits,
        shard: usize,
        handoff: Option<&[u8]>,
        session: &mut Session<'_>,
    ) -> Result<ShardStep, SnapshotError> {
        let executed = match handoff {
            Some(bytes) => {
                let snapshot = Snapshot::from_bytes(bytes)?;
                session.resume(&snapshot)?;
                snapshot.instructions()
            }
            None => 0,
        };
        run_shard(
            program,
            limits,
            self.budget(limits.max_instrs, executed),
            self.is_last(shard),
            session,
        )
    }
}

/// The single-shard execution primitive beneath [`Plan::step`], for
/// drivers that receive an already-resolved budget instead of a `Plan`
/// (a worker process is told its slice by the coordinator): advance
/// `budget` instructions in `session` (already resumed, if resuming),
/// then end the stream if the program halted, the total budget
/// (`limits.max_instrs`) is spent, or `last` forces an explicit finish
/// — otherwise checkpoint for the successor.
///
/// # Errors
///
/// Propagates CPU faults ([`SnapshotError::Cpu`]) and checkpoint
/// failures.
pub fn run_shard(
    program: &Program,
    limits: RunLimits,
    budget: u64,
    last: bool,
    session: &mut Session<'_>,
) -> Result<ShardStep, SnapshotError> {
    let summary = session.advance(
        program,
        RunLimits {
            max_instrs: budget,
            ..limits
        },
    )?;
    if session.is_ended() {
        // The program halted inside this shard.
        Ok(ShardStep {
            summary,
            handoff: None,
        })
    } else if last || summary.instructions >= limits.max_instrs {
        session.finish();
        Ok(ShardStep {
            summary,
            handoff: None,
        })
    } else {
        let bytes = session.checkpoint()?.to_bytes();
        Ok(ShardStep {
            summary,
            handoff: Some(bytes),
        })
    }
}

/// Splits one run into K contiguous shards linked by serialized
/// [`Snapshot`]s; the module-level comments above describe the
/// execution model.
///
/// `limits.max_instrs` is the **total** instruction budget; it is cut
/// into K equal fuel slices (the last one possibly short). A program
/// that halts before the budget simply ends in an earlier shard; a
/// program still running when the budget is exhausted is finished
/// explicitly, exactly like a fuel-truncated [`Session::run`].
///
/// ```
/// use loopspec_asm::ProgramBuilder;
/// use loopspec_cpu::RunLimits;
/// use loopspec_mt::{StrPolicy, StreamEngine};
/// use loopspec_pipeline::{Session, ShardedRun};
///
/// let mut b = ProgramBuilder::new();
/// b.counted_loop(300, |b, _| b.work(15));
/// let program = b.finish()?;
///
/// // Reference: one uninterrupted pass.
/// let mut reference = StreamEngine::new(StrPolicy::new(), 4);
/// let mut session = Session::new();
/// session.observe_checkpointable(&mut reference);
/// let single = session.run(&program, RunLimits::default())?;
///
/// // The same run as 4 checkpoint-linked shards.
/// let sharded = ShardedRun::new(4).run(&program, RunLimits::with_fuel(single.instructions), || {
///     StreamEngine::new(StrPolicy::new(), 4)
/// })?;
/// assert_eq!(sharded.shards_run, 4);
/// assert_eq!(sharded.sink.report(), reference.report());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ShardedRun {
    plan: Plan,
}

impl ShardedRun {
    /// A run split into `shards` contiguous slices.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        ShardedRun {
            plan: Plan::split(shards),
        }
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.plan.shards().expect("ShardedRun always splits")
    }

    /// The scheduling core this driver executes.
    pub fn plan(&self) -> Plan {
        self.plan
    }

    /// Executes `program` shard by shard **in this thread**, handing
    /// serialized snapshots between shards. `make_sink` constructs each
    /// shard's fresh sink (same configuration every time — snapshot
    /// loading verifies this).
    ///
    /// # Errors
    ///
    /// Propagates CPU faults ([`SnapshotError::Cpu`]) and
    /// checkpoint/restore failures.
    pub fn run<S, F>(
        &self,
        program: &Program,
        limits: RunLimits,
        mut make_sink: F,
    ) -> Result<ShardedOutcome<S>, SnapshotError>
    where
        S: CheckpointSink + Send,
        F: FnMut() -> S,
    {
        let mut handoff: Option<Vec<u8>> = None;
        let mut handoff_bytes = 0u64;
        for shard in 0..self.shards() {
            let mut sink = make_sink();
            let step = {
                let mut session = Session::new();
                session.observe_checkpointable(&mut sink);
                self.plan.step(
                    program,
                    limits,
                    shard,
                    handoff.take().as_deref(),
                    &mut session,
                )?
            };
            match step.handoff {
                Some(bytes) => {
                    handoff_bytes += bytes.len() as u64;
                    handoff = Some(bytes);
                }
                None => {
                    return Ok(ShardedOutcome {
                        sink,
                        summary: step.summary,
                        shards_run: shard + 1,
                        handoff_bytes,
                    });
                }
            }
        }
        unreachable!("the final shard always ends the stream")
    }

    /// Executes `program` with each shard on its **own worker thread**,
    /// streaming the serialized snapshots through channels — the
    /// pipeline-style handoff a distributed deployment would use (the
    /// shards remain serially dependent; what moves between workers is
    /// only the snapshot bytes).
    ///
    /// Produces exactly the same outcome as [`ShardedRun::run`]; the
    /// multi-process variant of the same shape lives in the
    /// `loopspec-dist` crate.
    ///
    /// # Errors
    ///
    /// Propagates CPU faults ([`SnapshotError::Cpu`]) and
    /// checkpoint/restore failures from whichever worker hit them.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panics.
    pub fn run_on_workers<S, F>(
        &self,
        program: &Program,
        limits: RunLimits,
        make_sink: F,
    ) -> Result<ShardedOutcome<S>, SnapshotError>
    where
        S: CheckpointSink + Send,
        F: Fn() -> S + Sync,
    {
        use std::sync::mpsc;

        /// What travels between consecutive workers.
        enum Baton {
            /// Run your shard, resuming from these snapshot bytes (or
            /// from scratch for the first shard).
            Run(Option<Vec<u8>>),
            /// The stream ended upstream; do nothing.
            Done,
        }

        type WorkerResult<S> = Result<(u64, Option<(S, SessionSummary, usize)>), SnapshotError>;

        let shards = self.shards();
        let make_sink = &make_sink;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shards);
            let (first_tx, mut rx) = mpsc::channel::<Baton>();
            first_tx.send(Baton::Run(None)).expect("receiver alive");
            drop(first_tx);
            for shard in 0..shards {
                let (tx_next, rx_next) = mpsc::channel::<Baton>();
                let plan = self.plan;
                let rx_cur = std::mem::replace(&mut rx, rx_next);
                handles.push(scope.spawn(move || -> WorkerResult<S> {
                    // A closed channel means an upstream worker errored
                    // out; its own result carries the error.
                    let baton = rx_cur.recv().unwrap_or(Baton::Done);
                    let Baton::Run(bytes) = baton else {
                        let _ = tx_next.send(Baton::Done);
                        return Ok((0, None));
                    };
                    let mut sink = make_sink();
                    let step = {
                        let mut session = Session::new();
                        session.observe_checkpointable(&mut sink);
                        plan.step(program, limits, shard, bytes.as_deref(), &mut session)?
                    };
                    match step.handoff {
                        None => {
                            let _ = tx_next.send(Baton::Done);
                            Ok((0, Some((sink, step.summary, shard + 1))))
                        }
                        Some(bytes) => {
                            let sent = bytes.len() as u64;
                            let _ = tx_next.send(Baton::Run(Some(bytes)));
                            Ok((sent, None))
                        }
                    }
                }));
            }
            drop(rx);

            let mut handoff_bytes = 0u64;
            let mut outcome = None;
            for handle in handles {
                let (sent, done) = handle.join().expect("worker thread panicked")?;
                handoff_bytes += sent;
                if done.is_some() {
                    outcome = done;
                }
            }
            let (sink, summary, shards_run) = outcome.expect("one worker ends the stream");
            Ok(ShardedOutcome {
                sink,
                summary,
                shards_run,
                handoff_bytes,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_asm::ProgramBuilder;
    use loopspec_core::EventCollector;

    fn program(build: impl FnOnce(&mut ProgramBuilder)) -> Program {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        b.finish().expect("assembles")
    }

    #[test]
    fn split_plan_budgets_cover_the_total_exactly() {
        let plan = Plan::split(4);
        assert_eq!(plan.shards(), Some(4));
        // 10 instructions over 4 shards: slices 3,3,3,1.
        let mut executed = 0;
        let mut slices = Vec::new();
        for shard in 0..4 {
            let b = plan.budget(10, executed);
            slices.push(b);
            executed += b;
            if plan.is_last(shard) {
                break;
            }
        }
        assert_eq!(slices, [3, 3, 3, 1]);
        assert_eq!(executed, 10);
        assert!(plan.is_last(3) && !plan.is_last(2));
    }

    #[test]
    fn sliced_plan_never_forces_an_end() {
        let plan = Plan::sliced(25);
        assert_eq!(plan.shards(), None);
        assert_eq!(plan.budget(1000, 0), 25);
        assert_eq!(plan.budget(1000, 990), 10, "clamped to the total");
        assert!(!plan.is_last(0) && !plan.is_last(1_000_000));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = Plan::split(0);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn zero_fuel_is_rejected() {
        let _ = Plan::sliced(0);
    }

    #[test]
    fn sliced_plan_chains_until_halt_and_matches_split() {
        let p = program(|b| b.counted_loop(100, |b, _| b.work(7)));

        let mut reference = EventCollector::default();
        let mut session = Session::new();
        session.observe_checkpointable(&mut reference);
        let single = session.run(&p, RunLimits::default()).unwrap();

        // Drive a sliced plan by hand, the way a job queue would: fixed
        // fuel per shard, chain until a step reports done.
        let plan = Plan::sliced(200);
        let mut handoff: Option<Vec<u8>> = None;
        let mut shard = 0;
        let sink = loop {
            let mut sink = EventCollector::default();
            let mut session = Session::new();
            session.observe_checkpointable(&mut sink);
            let step = plan
                .step(
                    &p,
                    RunLimits::default(),
                    shard,
                    handoff.take().as_deref(),
                    &mut session,
                )
                .unwrap();
            shard += 1;
            match step.handoff {
                Some(bytes) => handoff = Some(bytes),
                None => {
                    assert_eq!(step.summary.instructions, single.instructions);
                    break sink;
                }
            }
        };
        assert_eq!(shard as u64, single.instructions.div_ceil(200));
        assert_eq!(sink.events(), reference.events());
        assert_eq!(sink.instructions(), reference.instructions());
    }
}
