//! # loopspec-pipeline — the single-pass streaming session
//!
//! The paper's mechanism is inherently streaming: the CLS watches the
//! committed instruction stream once, and the LET/LIT, the speculation
//! engine and the live-in profiler all hang off that single observation
//! point. This crate reproduces that shape in software. A [`Session`]
//! drives the [`Cpu`](loopspec_cpu::Cpu) instruction by instruction,
//! feeds every retired instruction through **one shared**
//! [`LoopDetector`](loopspec_core::LoopDetector), and fans the
//! resulting [`LoopEvent`](loopspec_core::LoopEvent)s out to any number
//! of registered [`LoopEventSink`]s — all in a single pass, with memory
//! bounded by the sinks themselves (the streaming engine retains
//! O(live-loops + run-ahead window), not O(trace)).
//!
//! Compare the two shapes:
//!
//! ```text
//! legacy (three passes over the run):
//!   Cpu ──▶ EventCollector ──▶ Vec<LoopEvent> ──▶ AnnotatedTrace ──▶ Engine
//!
//! streaming (one pass, many consumers):
//!             ┌▶ StreamEngine(STR, 4 TUs)  ─▶ EngineReport
//!   Cpu ─▶ CLS┼▶ StreamEngine(IDLE, 8 TUs) ─▶ EngineReport
//!             ├▶ LoopStats / TableHitSim   ─▶ Table 1 / Figure 4
//!             └▶ LiveInProfiler            ─▶ Figure 8
//! ```
//!
//! ## Checkpoint, resume, shard
//!
//! Because the CLS and the engines are small fixed state machines, a
//! session is snapshotable at any retired-instruction boundary:
//!
//! * [`Session::advance`] runs fuel-bounded segments instead of the
//!   whole program;
//! * [`Session::checkpoint`] captures CPU cursor + detector + sink
//!   state as a [`Snapshot`] with a deterministic, checksummed byte
//!   form ([`Snapshot::to_bytes`]) that crosses process boundaries;
//! * [`Session::resume`] restores a snapshot into a fresh session;
//! * [`ShardedRun`] chains the two into K contiguous shards of one
//!   trace — each shard a fresh sink restored from the predecessor's
//!   snapshot bytes — with results **bit-identical** to a single pass
//!   (`examples/sharded_replay.rs` demonstrates; the
//!   `sharded_equivalence` suite proves it on all 18 workloads).
//!
//! ## Example
//!
//! ```
//! use loopspec_asm::ProgramBuilder;
//! use loopspec_core::LoopStats;
//! use loopspec_cpu::RunLimits;
//! use loopspec_mt::{StrPolicy, StreamEngine};
//! use loopspec_pipeline::Session;
//!
//! let mut b = ProgramBuilder::new();
//! b.counted_loop(100, |b, _| b.work(20));
//! let program = b.finish()?;
//!
//! let mut stats = LoopStats::new();
//! let mut engine = StreamEngine::new(StrPolicy::new(), 4);
//!
//! let mut session = Session::new();
//! session.observe_loops(&mut stats).observe_loops(&mut engine);
//! let out = session.run(&program, RunLimits::default())?;
//!
//! assert!(out.halted());
//! let report = engine.report().expect("stream ended");
//! assert_eq!(report.instructions, out.instructions);
//! assert!(report.tpc() > 2.0, "4 TUs should overlap iterations");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod parallel;
mod session;
mod shard;
mod sinkset;
mod snapshot;

// Re-exported so downstream code can name the whole streaming surface
// through one crate.
pub use loopspec_core::{LoopEventSink, SnapshotState};

pub use parallel::ParallelSinkSet;
pub use session::{DualSink, Interp, Session, SessionSummary};
pub use shard::{run_shard, Plan, ShardStep, ShardedOutcome, ShardedRun};
pub use sinkset::SinkSet;
pub use snapshot::{CheckpointSink, Snapshot, SnapshotError};

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_asm::ProgramBuilder;
    use loopspec_core::{Cls, CountingSink, EventCollector, LoopStats};
    use loopspec_cpu::{CountingTracer, Cpu, RunLimits};
    use loopspec_dataspec::{DataSpecProfiler, LiveInProfiler};
    use loopspec_mt::{AnnotatedTrace, Engine, EngineGrid, StrPolicy, StreamEngine};

    fn program(build: impl FnOnce(&mut ProgramBuilder)) -> loopspec_asm::Program {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        b.finish().expect("assembles")
    }

    #[test]
    fn single_pass_matches_collect_then_replay() {
        let p = program(|b| {
            b.counted_loop(20, |b, _| {
                b.counted_loop(6, |b, _| b.work(5));
            });
        });

        // Legacy: dedicated collector run, then annotate + engine.
        let mut legacy = EventCollector::default();
        Cpu::new()
            .run(&p, &mut legacy, RunLimits::default())
            .unwrap();
        let (events, n) = legacy.into_parts();
        let batch = Engine::new(&AnnotatedTrace::build(&events, n), StrPolicy::new(), 4).run();

        // Streaming: everything in one pass.
        let mut collected = EventCollector::default();
        let mut engine = StreamEngine::new(StrPolicy::new(), 4);
        let mut session = Session::new();
        session
            .observe_loops(&mut collected)
            .observe_loops(&mut engine);
        let out = session.run(&p, RunLimits::default()).unwrap();

        assert!(out.halted());
        assert_eq!(out.instructions, n);
        assert_eq!(collected.events(), &events[..]);
        assert_eq!(collected.instructions(), n);
        assert_eq!(engine.report().unwrap(), &batch);
    }

    #[test]
    fn dual_sink_profiler_matches_bundled_profiler() {
        let p = program(|b| {
            let acc = b.alloc_reg();
            b.li(acc, 0);
            b.counted_loop(40, |b, i| {
                b.op(loopspec_isa::AluOp::Add, acc, acc, i);
                b.work(5);
            });
        });

        let mut bundled = DataSpecProfiler::new();
        Cpu::new()
            .run(&p, &mut bundled, RunLimits::default())
            .unwrap();

        let mut shared = LiveInProfiler::new();
        let mut session = Session::new();
        session.observe_both(&mut shared);
        session.run(&p, RunLimits::default()).unwrap();

        assert_eq!(shared.records(), bundled.records());
        assert_eq!(shared.report(), bundled.report());
    }

    #[test]
    fn instruction_tracers_see_every_retirement() {
        let p = program(|b| b.counted_loop(10, |b, _| b.work(3)));
        let mut counter = CountingTracer::default();
        let mut counting = CountingSink::default();
        let mut session = Session::new();
        session
            .observe_instrs(&mut counter)
            .observe_loops(&mut counting);
        let out = session.run(&p, RunLimits::default()).unwrap();
        assert_eq!(counter.retired, out.instructions);
        assert!(counting.events > 0);
        assert_eq!(counting.instructions, out.instructions);
    }

    #[test]
    fn fuel_exhaustion_flushes_open_executions() {
        let p = program(|b| b.loop_forever(|b| b.work(5)));
        let mut stats = LoopStats::new();
        let mut counting = CountingSink::default();
        let mut session = Session::new();
        session
            .observe_loops(&mut stats)
            .observe_loops(&mut counting);
        let out = session.run(&p, RunLimits::with_fuel(1000)).unwrap();
        assert!(!out.halted());
        assert_eq!(out.instructions, 1000);
        assert_eq!(counting.instructions, 1000);
        // The infinite loop's execution was closed by the session flush.
        let report = stats.report(out.instructions);
        assert_eq!(report.executions, 1);
    }

    #[test]
    fn empty_session_is_fine() {
        let p = program(|b| b.work(10));
        let out = Session::new().run(&p, RunLimits::default()).unwrap();
        assert!(out.halted());
        assert_eq!(out.instructions, 13); // 2 startup + 10 work + halt
    }

    #[test]
    fn sink_set_matches_individual_registration() {
        let p = program(|b| {
            b.counted_loop(12, |b, _| {
                b.counted_loop(5, |b, _| b.work(4));
            });
        });

        let mut single = EventCollector::default();
        let mut session = Session::new();
        session.observe_loops(&mut single);
        session.run(&p, RunLimits::default()).unwrap();

        let mut set: SinkSet<EventCollector> = (0..3).map(|_| EventCollector::default()).collect();
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        let mut session = Session::new();
        session.observe_loops(&mut set);
        let out = session.run(&p, RunLimits::default()).unwrap();

        for c in set.iter() {
            assert_eq!(c.events(), single.events());
            assert_eq!(c.instructions(), out.instructions);
        }
        assert_eq!(set.get(0).unwrap().events(), single.events());
        assert_eq!(set.into_inner().len(), 3);
    }

    #[test]
    fn chunk_capacity_does_not_change_results() {
        // Any chunk size — including 1 (per-instruction delivery) and one
        // larger than the whole stream (a single flush straddling
        // on_stream_end) — must produce identical events and reports.
        let p = program(|b| {
            b.counted_loop(15, |b, _| {
                b.counted_loop(4, |b, _| b.work(3));
            });
        });

        let mut reference = EventCollector::default();
        let mut ref_engine = StreamEngine::new(StrPolicy::new(), 4);
        let mut session = Session::new();
        session
            .observe_loops(&mut reference)
            .observe_loops(&mut ref_engine);
        session.run(&p, RunLimits::default()).unwrap();

        for cap in [1usize, 2, 3, 7, 1_000_000] {
            let mut collected = EventCollector::default();
            let mut engine = StreamEngine::new(StrPolicy::new(), 4);
            let mut session = Session::with_cls(Cls::default().with_chunk_capacity(cap));
            session
                .observe_loops(&mut collected)
                .observe_loops(&mut engine);
            session.run(&p, RunLimits::default()).unwrap();
            assert_eq!(collected.events(), reference.events(), "chunk {cap}");
            assert_eq!(
                engine.report().unwrap(),
                ref_engine.report().unwrap(),
                "chunk {cap}"
            );
        }
    }

    #[test]
    fn custom_cls_capacity_is_respected() {
        // A 3-deep nest through a 1-entry CLS: evictions must occur.
        let p = program(|b| {
            b.counted_loop(4, |b, _| {
                b.counted_loop(4, |b, _| {
                    b.counted_loop(4, |b, _| b.work(2));
                });
            });
        });
        let mut v: Vec<loopspec_core::LoopEvent> = Vec::new();
        let mut session = Session::with_cls(Cls::new(1));
        session.observe_loops(&mut v);
        session.run(&p, RunLimits::default()).unwrap();
        assert!(v
            .iter()
            .any(|e| matches!(e, loopspec_core::LoopEvent::Evicted { .. })));
    }

    // ------------------------------------------------------------------
    // Segmented execution, checkpoints, sharding.

    #[test]
    fn advance_in_segments_matches_one_shot_run() {
        let p = program(|b| {
            b.counted_loop(30, |b, _| {
                b.counted_loop(7, |b, _| b.work(4));
            });
        });

        let mut reference = EventCollector::default();
        let mut session = Session::new();
        session.observe_loops(&mut reference);
        let single = session.run(&p, RunLimits::default()).unwrap();

        let mut collected = EventCollector::default();
        let mut session = Session::new();
        session.observe_loops(&mut collected);
        let last = loop {
            let s = session.advance(&p, RunLimits::with_fuel(500)).unwrap();
            assert_eq!(s.instructions, session.position());
            if s.halted() {
                break s;
            }
        };
        assert!(session.is_ended());
        assert_eq!(last.instructions, single.instructions);
        assert_eq!(collected.events(), reference.events());
        assert_eq!(collected.instructions(), reference.instructions());
    }

    #[test]
    fn checkpoint_resume_round_trip_is_exact() {
        let p = program(|b| {
            b.counted_loop(25, |b, _| {
                b.counted_loop(9, |b, _| b.work(6));
            });
        });

        let mut reference = StreamEngine::new(StrPolicy::new(), 4);
        let mut ref_events = EventCollector::default();
        let mut session = Session::new();
        session
            .observe_checkpointable(&mut reference)
            .observe_checkpointable(&mut ref_events);
        let single = session.run(&p, RunLimits::default()).unwrap();

        // Segment 1 in "process A".
        let mut engine_a = StreamEngine::new(StrPolicy::new(), 4);
        let mut events_a = EventCollector::default();
        let mut session_a = Session::new();
        session_a
            .observe_checkpointable(&mut engine_a)
            .observe_checkpointable(&mut events_a);
        let s = session_a.advance(&p, RunLimits::with_fuel(777)).unwrap();
        assert!(!s.halted());
        let snap = session_a.checkpoint().unwrap();
        assert_eq!(snap.instructions(), 777);
        assert_eq!(snap.sink_sections(), 2);
        let bytes = snap.to_bytes();
        // Determinism: checkpointing the same state twice → same bytes.
        assert_eq!(bytes, session_a.checkpoint().unwrap().to_bytes());

        // Segment 2 in "process B": fresh sinks, state from bytes only.
        let mut engine_b = StreamEngine::new(StrPolicy::new(), 4);
        let mut events_b = EventCollector::default();
        let mut session_b = Session::new();
        session_b
            .observe_checkpointable(&mut engine_b)
            .observe_checkpointable(&mut events_b);
        session_b
            .resume(&Snapshot::from_bytes(&bytes).unwrap())
            .unwrap();
        assert_eq!(session_b.position(), 777);
        let out = session_b.advance(&p, RunLimits::default()).unwrap();
        assert!(out.halted());
        assert_eq!(out.instructions, single.instructions);

        assert_eq!(engine_b.report(), reference.report());
        assert_eq!(events_b.events(), ref_events.events());
    }

    #[test]
    fn owned_sinks_match_borrowed_and_travel_across_threads() {
        let p = program(|b| {
            b.counted_loop(25, |b, _| {
                b.counted_loop(9, |b, _| b.work(6));
            });
        });

        let mut reference = StreamEngine::new(StrPolicy::new(), 4);
        let mut ref_events = EventCollector::default();
        let mut session = Session::new();
        session
            .observe_checkpointable(&mut reference)
            .observe_checkpointable(&mut ref_events);
        session.run(&p, RunLimits::default()).unwrap();

        // A fully owned session is 'static + Send: build it here, run it
        // on another thread (the job-table shape the replay service uses).
        let mut owned = Session::new();
        owned
            .add_sink(StreamEngine::new(StrPolicy::new(), 4))
            .add_sink(EventCollector::default());
        let p2 = p.clone();
        let mut owned = std::thread::spawn(move || {
            owned.advance(&p2, RunLimits::default()).unwrap();
            owned
        })
        .join()
        .unwrap();
        assert!(owned.is_ended());

        // Accessors: right slot + right type only.
        assert!(owned.sink::<EventCollector>(0).is_none(), "wrong type");
        assert!(
            owned.sink::<StreamEngine<StrPolicy>>(2).is_none(),
            "no slot"
        );
        let engine = owned
            .sink_mut::<StreamEngine<StrPolicy>>(0)
            .expect("slot 0 is the engine");
        assert_eq!(engine.report(), reference.report());
        let events: EventCollector = owned.into_sink(1).expect("slot 1 is the collector");
        assert_eq!(events.events(), ref_events.events());
    }

    #[test]
    fn owned_sink_checkpoints_byte_identical_to_borrowed() {
        let p = program(|b| {
            b.counted_loop(25, |b, _| {
                b.counted_loop(9, |b, _| b.work(6));
            });
        });

        let mut borrowed = StreamEngine::new(StrPolicy::new(), 4);
        let mut session = Session::new();
        session.observe_checkpointable(&mut borrowed);
        session.advance(&p, RunLimits::with_fuel(777)).unwrap();
        let reference_bytes = session.checkpoint().unwrap().to_bytes();

        // Type-erased sinks register too (`Box<dyn CheckpointSink + Send>`
        // is itself a `CheckpointSink`), and the owned slot contributes
        // the same snapshot section as the borrowed registration.
        let boxed: Box<dyn CheckpointSink + Send> =
            Box::new(StreamEngine::new(StrPolicy::new(), 4));
        let mut owned = Session::new();
        owned.add_sink(boxed);
        owned.advance(&p, RunLimits::with_fuel(777)).unwrap();
        let bytes = owned.checkpoint().unwrap().to_bytes();
        assert_eq!(bytes, reference_bytes);

        // And an owned session resumes from a borrowed session's
        // snapshot (the sections don't know how their sink is held).
        let mut resumed = Session::new();
        resumed.add_sink(StreamEngine::new(StrPolicy::new(), 4));
        resumed
            .resume(&Snapshot::from_bytes(&reference_bytes).unwrap())
            .unwrap();
        let out = resumed.advance(&p, RunLimits::default()).unwrap();
        assert!(out.halted());

        let mut single = StreamEngine::new(StrPolicy::new(), 4);
        let mut single_session = Session::new();
        single_session.observe_checkpointable(&mut single);
        single_session.run(&p, RunLimits::default()).unwrap();
        assert_eq!(
            resumed.sink::<StreamEngine<StrPolicy>>(0).unwrap().report(),
            single.report()
        );
    }

    #[test]
    fn checkpoint_requires_checkpointable_sinks() {
        let p = program(|b| b.counted_loop(10, |b, _| b.work(3)));
        let mut counting = CountingSink::default();
        let mut session = Session::new();
        session.observe_loops(&mut counting);
        session.advance(&p, RunLimits::with_fuel(10)).unwrap();
        assert_eq!(
            session.checkpoint().unwrap_err(),
            SnapshotError::NotCheckpointable
        );
    }

    #[test]
    fn checkpoint_after_stream_end_is_rejected() {
        let p = program(|b| b.work(5));
        let mut events = EventCollector::default();
        let mut session = Session::new();
        session.observe_checkpointable(&mut events);
        session.advance(&p, RunLimits::default()).unwrap();
        assert!(session.is_ended());
        assert_eq!(
            session.checkpoint().unwrap_err(),
            SnapshotError::StreamEnded
        );
    }

    #[test]
    fn resume_validates_session_state_and_sink_count() {
        let p = program(|b| b.counted_loop(20, |b, _| b.work(5)));
        let mut events = EventCollector::default();
        let mut session = Session::new();
        session.observe_checkpointable(&mut events);
        session.advance(&p, RunLimits::with_fuel(30)).unwrap();
        let snap = session.checkpoint().unwrap();

        // Started sessions refuse to resume.
        assert_eq!(
            session.resume(&snap).unwrap_err(),
            SnapshotError::AlreadyStarted
        );

        // Wrong sink count.
        let mut a = EventCollector::default();
        let mut b2 = EventCollector::default();
        let mut fresh = Session::new();
        fresh
            .observe_checkpointable(&mut a)
            .observe_checkpointable(&mut b2);
        assert_eq!(
            fresh.resume(&snap).unwrap_err(),
            SnapshotError::SinkCountMismatch {
                snapshot: 1,
                session: 2
            }
        );

        // Differently configured sink: a grid where an engine was.
        let mut grid = EngineGrid::new();
        grid.push_str(4);
        let mut fresh = Session::new();
        fresh.observe_checkpointable(&mut grid);
        assert!(matches!(
            fresh.resume(&snap).unwrap_err(),
            SnapshotError::Codec(_)
        ));
    }

    #[test]
    fn finish_ends_a_paused_stream_like_a_truncated_run() {
        let p = program(|b| b.loop_forever(|b| b.work(4)));

        let mut reference = LoopStats::new();
        let mut session = Session::new();
        session.observe_loops(&mut reference);
        let single = session.run(&p, RunLimits::with_fuel(900)).unwrap();

        let mut stats = LoopStats::new();
        let mut session = Session::new();
        session.observe_checkpointable(&mut stats);
        for _ in 0..3 {
            session.advance(&p, RunLimits::with_fuel(300)).unwrap();
        }
        assert!(!session.is_ended());
        assert_eq!(session.finish(), 900);
        assert!(session.is_ended());
        assert_eq!(session.finish(), 900, "finish is idempotent");
        assert_eq!(
            stats.report(900),
            reference.report(single.instructions),
            "explicit finish == fuel-truncated run"
        );
    }

    #[test]
    fn sharded_run_matches_single_pass_grid() {
        let p = program(|b| {
            b.counted_loop(40, |b, _| {
                b.counted_loop(8, |b, _| b.work(5));
            });
        });
        let make_grid = || {
            let mut g = EngineGrid::new();
            g.push_idle(4);
            g.push_str(4);
            g.push_str_nested(2, 4);
            g
        };

        let mut reference = make_grid();
        let mut session = Session::new();
        session.observe_checkpointable(&mut reference);
        let single = session.run(&p, RunLimits::default()).unwrap();

        for shards in [1usize, 2, 3, 8] {
            let out = ShardedRun::new(shards)
                .run(&p, RunLimits::with_fuel(single.instructions), make_grid)
                .unwrap();
            assert_eq!(out.summary.instructions, single.instructions);
            assert_eq!(out.sink.reports(), reference.reports(), "K={shards}");
            if shards > 1 {
                assert_eq!(out.shards_run, shards);
                assert!(out.handoff_bytes > 0);
            }
        }
    }

    #[test]
    fn sharded_run_on_workers_matches_in_thread_run() {
        let p = program(|b| {
            b.counted_loop(60, |b, _| b.work(12));
        });
        let make = || StreamEngine::new(StrPolicy::new(), 4);
        let n = {
            let mut e = make();
            let mut s = Session::new();
            s.observe_checkpointable(&mut e);
            s.run(&p, RunLimits::default()).unwrap().instructions
        };
        let seq = ShardedRun::new(4)
            .run(&p, RunLimits::with_fuel(n), make)
            .unwrap();
        let par = ShardedRun::new(4)
            .run_on_workers(&p, RunLimits::with_fuel(n), make)
            .unwrap();
        assert_eq!(seq.sink.report(), par.sink.report());
        assert_eq!(seq.shards_run, par.shards_run);
        assert_eq!(seq.handoff_bytes, par.handoff_bytes);
    }

    #[test]
    fn sharded_run_handles_early_halt_and_tiny_budgets() {
        let p = program(|b| b.work(20)); // halts after 23 instructions
        let out = ShardedRun::new(8)
            .run(&p, RunLimits::default(), EventCollector::default)
            .unwrap();
        assert_eq!(out.shards_run, 1, "halt in shard 0 short-circuits");
        assert!(out.summary.halted());

        // A budget smaller than the shard count still terminates.
        let p = program(|b| b.loop_forever(|b| b.work(2)));
        let out = ShardedRun::new(8)
            .run(&p, RunLimits::with_fuel(3), EventCollector::default)
            .unwrap();
        assert_eq!(out.summary.instructions, 3);
        assert_eq!(out.sink.instructions(), 3);
    }

    #[test]
    fn parallel_engine_subsets_match_one_serial_grid() {
        let p = program(|b| {
            b.counted_loop(35, |b, _| {
                b.counted_loop(6, |b, _| b.work(5));
            });
        });

        // Serial reference: one grid holding all four configurations.
        let mut serial = EngineGrid::new();
        serial.push_idle(4);
        serial.push_str(4);
        serial.push_str_nested(2, 4);
        serial.push_str(8);
        let mut session = Session::new();
        session.observe_checkpointable(&mut serial);
        session.run(&p, RunLimits::default()).unwrap();
        let expected = serial.reports().unwrap();

        // Parallel: the same four lanes as two 2-lane grid subsets, each
        // on its own worker thread.
        let make_pool = || -> ParallelSinkSet<EngineGrid> {
            let mut a = EngineGrid::new();
            a.push_idle(4);
            a.push_str(4);
            let mut b = EngineGrid::new();
            b.push_str_nested(2, 4);
            b.push_str(8);
            ParallelSinkSet::from_vec(vec![a, b])
        };
        let mut pool = make_pool();
        let mut session = Session::new();
        session.observe_checkpointable(&mut pool);
        session.run(&p, RunLimits::default()).unwrap();
        let got: Vec<_> = pool
            .with_each(|_, grid| grid.reports().unwrap().to_vec())
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(got, expected);

        // And the checkpoint chain: a mid-run snapshot of the pool
        // restores into a fresh pool and finishes identically.
        let mut pool_a = make_pool();
        let mut session_a = Session::new();
        session_a.observe_checkpointable(&mut pool_a);
        session_a.advance(&p, RunLimits::with_fuel(600)).unwrap();
        let bytes = session_a.checkpoint().unwrap().to_bytes();

        let mut pool_b = make_pool();
        let mut session_b = Session::new();
        session_b.observe_checkpointable(&mut pool_b);
        session_b
            .resume(&Snapshot::from_bytes(&bytes).unwrap())
            .unwrap();
        session_b.advance(&p, RunLimits::default()).unwrap();
        let resumed: Vec<_> = pool_b
            .with_each(|_, grid| grid.reports().unwrap().to_vec())
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(resumed, expected);
    }

    #[test]
    fn checkpointable_sink_set_round_trips() {
        let p = program(|b| {
            b.counted_loop(50, |b, _| b.work(10));
        });
        let make = || -> SinkSet<loopspec_mt::AnyStreamEngine> {
            [
                loopspec_mt::AnyStreamEngine::idle(4),
                loopspec_mt::AnyStreamEngine::str(8),
                loopspec_mt::AnyStreamEngine::str_nested(1, 4),
            ]
            .into_iter()
            .collect()
        };

        let mut reference = make();
        let mut session = Session::new();
        session.observe_checkpointable(&mut reference);
        let single = session.run(&p, RunLimits::default()).unwrap();

        let out = ShardedRun::new(3)
            .run(&p, RunLimits::with_fuel(single.instructions), make)
            .unwrap();
        for (a, b) in out.sink.iter().zip(reference.iter()) {
            assert_eq!(a.report(), b.report());
        }
    }
}
