//! # loopspec-pipeline — the single-pass streaming session
//!
//! The paper's mechanism is inherently streaming: the CLS watches the
//! committed instruction stream once, and the LET/LIT, the speculation
//! engine and the live-in profiler all hang off that single observation
//! point. This crate reproduces that shape in software. A [`Session`]
//! drives the [`Cpu`] instruction by instruction, feeds every retired
//! instruction through **one shared** [`LoopDetector`], and fans the
//! resulting [`LoopEvent`]s out to any number of registered
//! [`LoopEventSink`]s — all in a single pass, with memory bounded by the
//! sinks themselves (the streaming engine retains O(live-loops +
//! run-ahead window), not O(trace)).
//!
//! Compare the two shapes:
//!
//! ```text
//! legacy (three passes over the run):
//!   Cpu ──▶ EventCollector ──▶ Vec<LoopEvent> ──▶ AnnotatedTrace ──▶ Engine
//!
//! streaming (one pass, many consumers):
//!             ┌▶ StreamEngine(STR, 4 TUs)  ─▶ EngineReport
//!   Cpu ─▶ CLS┼▶ StreamEngine(IDLE, 8 TUs) ─▶ EngineReport
//!             ├▶ LoopStats / TableHitSim   ─▶ Table 1 / Figure 4
//!             └▶ LiveInProfiler            ─▶ Figure 8
//! ```
//!
//! ## Example
//!
//! ```
//! use loopspec_asm::ProgramBuilder;
//! use loopspec_core::LoopStats;
//! use loopspec_cpu::RunLimits;
//! use loopspec_mt::{StrPolicy, StreamEngine};
//! use loopspec_pipeline::Session;
//!
//! let mut b = ProgramBuilder::new();
//! b.counted_loop(100, |b, _| b.work(20));
//! let program = b.finish()?;
//!
//! let mut stats = LoopStats::new();
//! let mut engine = StreamEngine::new(StrPolicy::new(), 4);
//!
//! let mut session = Session::new();
//! session.observe_loops(&mut stats).observe_loops(&mut engine);
//! let out = session.run(&program, RunLimits::default())?;
//!
//! assert!(out.halted());
//! let report = engine.report().expect("stream ended");
//! assert_eq!(report.instructions, out.instructions);
//! assert!(report.tpc() > 2.0, "4 TUs should overlap iterations");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::fmt;

use loopspec_core::{Cls, LoopDetector, LoopEvent};
use loopspec_cpu::{Cpu, CpuError, InstrEvent, RunLimits, RunSummary, Tracer};
use loopspec_isa::ControlKind;

// Re-exported so downstream code can name the whole streaming surface
// through one crate.
pub use loopspec_core::LoopEventSink;

/// A consumer of both the instruction stream and the loop-event stream —
/// e.g. [`loopspec_dataspec::LiveInProfiler`], which charges live-ins per
/// instruction and rolls frames at iteration boundaries.
///
/// Blanket-implemented for everything that is both a [`Tracer`] and a
/// [`LoopEventSink`]; register with [`Session::observe_both`].
pub trait DualSink: Tracer + LoopEventSink {}

impl<T: Tracer + LoopEventSink> DualSink for T {}

enum Slot<'a> {
    Loops(&'a mut dyn LoopEventSink),
    Instrs(&'a mut dyn Tracer),
    Both(&'a mut dyn DualSink),
}

/// Result of a [`Session::run`].
#[derive(Debug, Clone, Copy)]
pub struct SessionSummary {
    /// Committed instructions (the stream length every sink was told at
    /// end-of-stream).
    pub instructions: u64,
    /// The CPU's own run summary.
    pub run: RunSummary,
}

impl SessionSummary {
    /// `true` when the program halted of its own accord.
    pub fn halted(&self) -> bool {
        self.run.halted()
    }
}

/// A single-pass execution session: one CPU run, one shared loop
/// detector, any number of streaming consumers.
///
/// Register consumers with [`Session::observe_loops`] (loop events only),
/// [`Session::observe_instrs`] (retired instructions only) or
/// [`Session::observe_both`], then call [`Session::run`]. Per retired
/// instruction the dispatch order is fixed: first every instruction
/// observer (in registration order), then the loop events that
/// instruction produced — so a [`DualSink`] sees the closing branch
/// *before* the iteration-end event it causes, matching the bundled
/// [`DataSpecProfiler`](loopspec_dataspec::DataSpecProfiler) semantics.
///
/// **Chunked fan-out.** Pure loop sinks do not receive events one at a
/// time: the detector buffers them into fixed-size chunks (the session's
/// [`Cls`] chunk capacity, default
/// [`DEFAULT_EVENT_CHUNK`](loopspec_core::DEFAULT_EVENT_CHUNK) events)
/// and each full chunk is delivered with one
/// [`on_loop_events`](LoopEventSink::on_loop_events) call per sink, in
/// registration order. Within every sink the stream is identical —
/// same events, same order, positions non-decreasing — only the call
/// granularity changes (see the batching contract in
/// [`loopspec_core::sink`]). [`DualSink`]s still see each instruction's
/// events before the next retirement, as their analyses require.
///
/// At end of stream (halt or fuel exhaustion) the detector is flushed,
/// the final partial chunk is delivered, and every loop/dual sink
/// receives [`on_stream_end`](LoopEventSink::on_stream_end) with the
/// final instruction count.
pub struct Session<'a> {
    detector: LoopDetector,
    slots: Vec<Slot<'a>>,
}

impl fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("detector", &self.detector)
            .field("sinks", &self.slots.len())
            .finish()
    }
}

impl Default for Session<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Session<'a> {
    /// A session with the paper's 16-entry CLS.
    pub fn new() -> Self {
        Session::with_cls(Cls::default())
    }

    /// A session detecting loops with a custom CLS (capacity ablations).
    pub fn with_cls(cls: Cls) -> Self {
        Session {
            detector: LoopDetector::new(cls),
            slots: Vec::new(),
        }
    }

    /// Registers a loop-event consumer.
    pub fn observe_loops(&mut self, sink: &'a mut dyn LoopEventSink) -> &mut Self {
        self.slots.push(Slot::Loops(sink));
        self
    }

    /// Registers a per-instruction consumer.
    pub fn observe_instrs(&mut self, tracer: &'a mut dyn Tracer) -> &mut Self {
        self.slots.push(Slot::Instrs(tracer));
        self
    }

    /// Registers a consumer of both streams (see [`DualSink`]).
    pub fn observe_both(&mut self, sink: &'a mut dyn DualSink) -> &mut Self {
        self.slots.push(Slot::Both(sink));
        self
    }

    /// Number of registered consumers.
    pub fn sinks(&self) -> usize {
        self.slots.len()
    }

    /// Executes `program` on a fresh [`Cpu`] in one pass, feeding every
    /// registered consumer, then ends the stream.
    ///
    /// Consumes the session: the sinks have received their end-of-stream
    /// callback and the borrows are released, so results can be read
    /// directly from the sink objects afterwards.
    ///
    /// # Errors
    ///
    /// Propagates any [`CpuError`]; sinks see the partial stream but no
    /// end-of-stream callback in that case.
    pub fn run(
        mut self,
        program: &loopspec_asm::Program,
        limits: RunLimits,
    ) -> Result<SessionSummary, CpuError> {
        let mut cpu = Cpu::new();
        let run = {
            let instr_observers = self
                .slots
                .iter()
                .any(|s| matches!(s, Slot::Instrs(_) | Slot::Both(_)));
            let mut dispatch = Dispatch {
                detector: &mut self.detector,
                slots: &mut self.slots,
                instr_observers,
            };
            cpu.run(program, &mut dispatch, limits)?
        };
        let instructions = run.retired;
        // A halt flushes the CLS through the detector; a fuel-exhausted
        // run leaves executions open — close them at the cut, exactly
        // like the batch annotator does for truncated traces. Dual sinks
        // have already seen everything up to `seen` live; loop sinks get
        // the whole final partial chunk in one delivery.
        let seen = self.detector.buffered().len();
        self.detector.flush_buffered(instructions);
        let chunk = self.detector.buffered();
        let trailing = &chunk[seen..];
        for slot in self.slots.iter_mut() {
            match slot {
                Slot::Loops(s) => {
                    if !chunk.is_empty() {
                        s.on_loop_events(chunk);
                    }
                    s.on_stream_end(instructions);
                }
                Slot::Both(d) => {
                    if !trailing.is_empty() {
                        d.on_loop_events(trailing);
                    }
                    d.on_stream_end(instructions);
                }
                Slot::Instrs(_) => {}
            }
        }
        Ok(SessionSummary { instructions, run })
    }
}

/// The internal fan-out tracer: one detector, many consumers.
///
/// Loop events are delivered on the **chunked** path: the detector
/// buffers them into its internal chunk (capacity from the session's
/// [`Cls`], default
/// [`DEFAULT_EVENT_CHUNK`](loopspec_core::DEFAULT_EVENT_CHUNK)) and each
/// full chunk is fanned out with a single
/// [`on_loop_events`](LoopEventSink::on_loop_events) call per loop sink
/// — one virtual call per chunk per sink instead of one per event per
/// sink. [`DualSink`]s are the exception: their analysis interleaves the
/// instruction and event streams (an instruction must be charged to the
/// iteration that was open when it retired), so they receive each
/// instruction's fresh events immediately, before the next retirement.
struct Dispatch<'s, 'a> {
    detector: &'s mut LoopDetector,
    slots: &'s mut Vec<Slot<'a>>,
    /// Whether any slot observes the instruction stream — when false
    /// (the common grid case: loop sinks only) the per-retirement slot
    /// walk is skipped entirely.
    instr_observers: bool,
}

impl Tracer for Dispatch<'_, '_> {
    fn on_retire(&mut self, ev: &InstrEvent) {
        if self.instr_observers {
            for slot in self.slots.iter_mut() {
                match slot {
                    Slot::Instrs(t) => t.on_retire(ev),
                    Slot::Both(d) => d.on_retire(ev),
                    Slot::Loops(_) => {}
                }
            }
        }
        if matches!(ev.control.kind, ControlKind::None) {
            return;
        }
        let before = self.detector.buffered().len();
        let full = self.detector.process_buffered(ev);
        if self.instr_observers {
            let fresh = &self.detector.buffered()[before..];
            if !fresh.is_empty() {
                for slot in self.slots.iter_mut() {
                    if let Slot::Both(d) = slot {
                        d.on_loop_events(fresh);
                    }
                }
            }
        }
        if full {
            let chunk = self.detector.buffered();
            for slot in self.slots.iter_mut() {
                if let Slot::Loops(s) = slot {
                    s.on_loop_events(chunk);
                }
            }
            self.detector.clear_buffered();
        }
    }
}

/// A homogeneous, **monomorphic** fan-out set: any number of same-type
/// sinks registered in a [`Session`] as a *single* slot.
///
/// The session's fan-out crosses one `&mut dyn` boundary per registered
/// slot per chunk. For many same-shaped consumers (e.g.
/// [`loopspec_mt::AnyStreamEngine`]s), a `SinkSet` collapses that to
/// one virtual call per chunk for the whole set, and the inner loop
/// dispatches statically. See [`loopspec_core::sink`] for the batching
/// contract it relies on.
///
/// For the *experiment grid* specifically — many speculation-engine
/// configurations over one stream — prefer
/// [`loopspec_mt::EngineGrid`], which additionally shares the
/// annotation bookkeeping across all configurations instead of
/// repeating it per sink; `SinkSet` is the general-purpose container
/// for sinks that have no such shared work.
///
/// ```
/// use loopspec_core::CountingSink;
/// use loopspec_pipeline::{Session, SinkSet};
/// use loopspec_cpu::RunLimits;
/// use loopspec_asm::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// b.counted_loop(10, |b, _| b.work(3));
/// let program = b.finish()?;
///
/// let mut grid: SinkSet<CountingSink> =
///     (0..20).map(|_| CountingSink::default()).collect();
/// let mut session = Session::new();
/// session.observe_loops(&mut grid);
/// session.run(&program, RunLimits::default())?;
/// assert!(grid.iter().all(|c| c.events > 0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct SinkSet<S> {
    sinks: Vec<S>,
}

impl<S: LoopEventSink> SinkSet<S> {
    /// An empty set.
    pub fn new() -> Self {
        SinkSet { sinks: Vec::new() }
    }

    /// Wraps an existing vector of sinks (delivery order = vector
    /// order).
    pub fn from_vec(sinks: Vec<S>) -> Self {
        SinkSet { sinks }
    }

    /// Appends a sink.
    pub fn push(&mut self, sink: S) {
        self.sinks.push(sink);
    }

    /// Number of sinks in the set.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// `true` when the set holds no sinks.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// The sink at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&S> {
        self.sinks.get(index)
    }

    /// Iterates the sinks in delivery order.
    pub fn iter(&self) -> std::slice::Iter<'_, S> {
        self.sinks.iter()
    }

    /// Mutably iterates the sinks in delivery order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, S> {
        self.sinks.iter_mut()
    }

    /// Consumes the set, returning the sinks.
    pub fn into_inner(self) -> Vec<S> {
        self.sinks
    }
}

impl<S: LoopEventSink> FromIterator<S> for SinkSet<S> {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        SinkSet {
            sinks: iter.into_iter().collect(),
        }
    }
}

impl<'a, S: LoopEventSink> IntoIterator for &'a SinkSet<S> {
    type Item = &'a S;
    type IntoIter = std::slice::Iter<'a, S>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<S: LoopEventSink> LoopEventSink for SinkSet<S> {
    #[inline]
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        for s in &mut self.sinks {
            s.on_loop_event(ev);
        }
    }

    #[inline]
    fn on_loop_events(&mut self, events: &[LoopEvent]) {
        for s in &mut self.sinks {
            s.on_loop_events(events);
        }
    }

    fn on_stream_end(&mut self, instructions: u64) {
        for s in &mut self.sinks {
            s.on_stream_end(instructions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_asm::ProgramBuilder;
    use loopspec_core::{CountingSink, EventCollector, LoopStats};
    use loopspec_cpu::CountingTracer;
    use loopspec_dataspec::{DataSpecProfiler, LiveInProfiler};
    use loopspec_mt::{AnnotatedTrace, Engine, StrPolicy, StreamEngine};

    fn program(build: impl FnOnce(&mut ProgramBuilder)) -> loopspec_asm::Program {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        b.finish().expect("assembles")
    }

    #[test]
    fn single_pass_matches_collect_then_replay() {
        let p = program(|b| {
            b.counted_loop(20, |b, _| {
                b.counted_loop(6, |b, _| b.work(5));
            });
        });

        // Legacy: dedicated collector run, then annotate + engine.
        let mut legacy = EventCollector::default();
        Cpu::new()
            .run(&p, &mut legacy, RunLimits::default())
            .unwrap();
        let (events, n) = legacy.into_parts();
        let batch = Engine::new(&AnnotatedTrace::build(&events, n), StrPolicy::new(), 4).run();

        // Streaming: everything in one pass.
        let mut collected = EventCollector::default();
        let mut engine = StreamEngine::new(StrPolicy::new(), 4);
        let mut session = Session::new();
        session
            .observe_loops(&mut collected)
            .observe_loops(&mut engine);
        let out = session.run(&p, RunLimits::default()).unwrap();

        assert!(out.halted());
        assert_eq!(out.instructions, n);
        assert_eq!(collected.events(), &events[..]);
        assert_eq!(collected.instructions(), n);
        assert_eq!(engine.report().unwrap(), &batch);
    }

    #[test]
    fn dual_sink_profiler_matches_bundled_profiler() {
        let p = program(|b| {
            let acc = b.alloc_reg();
            b.li(acc, 0);
            b.counted_loop(40, |b, i| {
                b.op(loopspec_isa::AluOp::Add, acc, acc, i);
                b.work(5);
            });
        });

        let mut bundled = DataSpecProfiler::new();
        Cpu::new()
            .run(&p, &mut bundled, RunLimits::default())
            .unwrap();

        let mut shared = LiveInProfiler::new();
        let mut session = Session::new();
        session.observe_both(&mut shared);
        session.run(&p, RunLimits::default()).unwrap();

        assert_eq!(shared.records(), bundled.records());
        assert_eq!(shared.report(), bundled.report());
    }

    #[test]
    fn instruction_tracers_see_every_retirement() {
        let p = program(|b| b.counted_loop(10, |b, _| b.work(3)));
        let mut counter = CountingTracer::default();
        let mut counting = CountingSink::default();
        let mut session = Session::new();
        session
            .observe_instrs(&mut counter)
            .observe_loops(&mut counting);
        let out = session.run(&p, RunLimits::default()).unwrap();
        assert_eq!(counter.retired, out.instructions);
        assert!(counting.events > 0);
        assert_eq!(counting.instructions, out.instructions);
    }

    #[test]
    fn fuel_exhaustion_flushes_open_executions() {
        let p = program(|b| b.loop_forever(|b| b.work(5)));
        let mut stats = LoopStats::new();
        let mut counting = CountingSink::default();
        let mut session = Session::new();
        session
            .observe_loops(&mut stats)
            .observe_loops(&mut counting);
        let out = session.run(&p, RunLimits::with_fuel(1000)).unwrap();
        assert!(!out.halted());
        assert_eq!(out.instructions, 1000);
        assert_eq!(counting.instructions, 1000);
        // The infinite loop's execution was closed by the session flush.
        let report = stats.report(out.instructions);
        assert_eq!(report.executions, 1);
    }

    #[test]
    fn empty_session_is_fine() {
        let p = program(|b| b.work(10));
        let out = Session::new().run(&p, RunLimits::default()).unwrap();
        assert!(out.halted());
        assert_eq!(out.instructions, 13); // 2 startup + 10 work + halt
    }

    #[test]
    fn sink_set_matches_individual_registration() {
        let p = program(|b| {
            b.counted_loop(12, |b, _| {
                b.counted_loop(5, |b, _| b.work(4));
            });
        });

        let mut single = EventCollector::default();
        let mut session = Session::new();
        session.observe_loops(&mut single);
        session.run(&p, RunLimits::default()).unwrap();

        let mut set: SinkSet<EventCollector> = (0..3).map(|_| EventCollector::default()).collect();
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        let mut session = Session::new();
        session.observe_loops(&mut set);
        let out = session.run(&p, RunLimits::default()).unwrap();

        for c in set.iter() {
            assert_eq!(c.events(), single.events());
            assert_eq!(c.instructions(), out.instructions);
        }
        assert_eq!(set.get(0).unwrap().events(), single.events());
        assert_eq!(set.into_inner().len(), 3);
    }

    #[test]
    fn chunk_capacity_does_not_change_results() {
        // Any chunk size — including 1 (per-instruction delivery) and one
        // larger than the whole stream (a single flush straddling
        // on_stream_end) — must produce identical events and reports.
        let p = program(|b| {
            b.counted_loop(15, |b, _| {
                b.counted_loop(4, |b, _| b.work(3));
            });
        });

        let mut reference = EventCollector::default();
        let mut ref_engine = StreamEngine::new(StrPolicy::new(), 4);
        let mut session = Session::new();
        session
            .observe_loops(&mut reference)
            .observe_loops(&mut ref_engine);
        session.run(&p, RunLimits::default()).unwrap();

        for cap in [1usize, 2, 3, 7, 1_000_000] {
            let mut collected = EventCollector::default();
            let mut engine = StreamEngine::new(StrPolicy::new(), 4);
            let mut session = Session::with_cls(Cls::default().with_chunk_capacity(cap));
            session
                .observe_loops(&mut collected)
                .observe_loops(&mut engine);
            session.run(&p, RunLimits::default()).unwrap();
            assert_eq!(collected.events(), reference.events(), "chunk {cap}");
            assert_eq!(
                engine.report().unwrap(),
                ref_engine.report().unwrap(),
                "chunk {cap}"
            );
        }
    }

    #[test]
    fn custom_cls_capacity_is_respected() {
        // A 3-deep nest through a 1-entry CLS: evictions must occur.
        let p = program(|b| {
            b.counted_loop(4, |b, _| {
                b.counted_loop(4, |b, _| {
                    b.counted_loop(4, |b, _| b.work(2));
                });
            });
        });
        let mut v: Vec<loopspec_core::LoopEvent> = Vec::new();
        let mut session = Session::with_cls(Cls::new(1));
        session.observe_loops(&mut v);
        session.run(&p, RunLimits::default()).unwrap();
        assert!(v
            .iter()
            .any(|e| matches!(e, loopspec_core::LoopEvent::Evicted { .. })));
    }
}
