//! # loopspec-pipeline — the single-pass streaming session
//!
//! The paper's mechanism is inherently streaming: the CLS watches the
//! committed instruction stream once, and the LET/LIT, the speculation
//! engine and the live-in profiler all hang off that single observation
//! point. This crate reproduces that shape in software. A [`Session`]
//! drives the [`Cpu`] instruction by instruction, feeds every retired
//! instruction through **one shared** [`LoopDetector`], and fans the
//! resulting [`LoopEvent`]s out to any number of registered
//! [`LoopEventSink`]s — all in a single pass, with memory bounded by the
//! sinks themselves (the streaming engine retains O(live-loops +
//! run-ahead window), not O(trace)).
//!
//! Compare the two shapes:
//!
//! ```text
//! legacy (three passes over the run):
//!   Cpu ──▶ EventCollector ──▶ Vec<LoopEvent> ──▶ AnnotatedTrace ──▶ Engine
//!
//! streaming (one pass, many consumers):
//!             ┌▶ StreamEngine(STR, 4 TUs)  ─▶ EngineReport
//!   Cpu ─▶ CLS┼▶ StreamEngine(IDLE, 8 TUs) ─▶ EngineReport
//!             ├▶ LoopStats / TableHitSim   ─▶ Table 1 / Figure 4
//!             └▶ LiveInProfiler            ─▶ Figure 8
//! ```
//!
//! ## Example
//!
//! ```
//! use loopspec_asm::ProgramBuilder;
//! use loopspec_core::LoopStats;
//! use loopspec_cpu::RunLimits;
//! use loopspec_mt::{StrPolicy, StreamEngine};
//! use loopspec_pipeline::Session;
//!
//! let mut b = ProgramBuilder::new();
//! b.counted_loop(100, |b, _| b.work(20));
//! let program = b.finish()?;
//!
//! let mut stats = LoopStats::new();
//! let mut engine = StreamEngine::new(StrPolicy::new(), 4);
//!
//! let mut session = Session::new();
//! session.observe_loops(&mut stats).observe_loops(&mut engine);
//! let out = session.run(&program, RunLimits::default())?;
//!
//! assert!(out.halted());
//! let report = engine.report().expect("stream ended");
//! assert_eq!(report.instructions, out.instructions);
//! assert!(report.tpc() > 2.0, "4 TUs should overlap iterations");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::fmt;

use loopspec_core::{Cls, LoopDetector};
use loopspec_cpu::{Cpu, CpuError, InstrEvent, RunLimits, RunSummary, Tracer};
use loopspec_isa::ControlKind;

// Re-exported so downstream code can name the whole streaming surface
// through one crate.
pub use loopspec_core::LoopEventSink;

/// A consumer of both the instruction stream and the loop-event stream —
/// e.g. [`loopspec_dataspec::LiveInProfiler`], which charges live-ins per
/// instruction and rolls frames at iteration boundaries.
///
/// Blanket-implemented for everything that is both a [`Tracer`] and a
/// [`LoopEventSink`]; register with [`Session::observe_both`].
pub trait DualSink: Tracer + LoopEventSink {}

impl<T: Tracer + LoopEventSink> DualSink for T {}

enum Slot<'a> {
    Loops(&'a mut dyn LoopEventSink),
    Instrs(&'a mut dyn Tracer),
    Both(&'a mut dyn DualSink),
}

/// Result of a [`Session::run`].
#[derive(Debug, Clone, Copy)]
pub struct SessionSummary {
    /// Committed instructions (the stream length every sink was told at
    /// end-of-stream).
    pub instructions: u64,
    /// The CPU's own run summary.
    pub run: RunSummary,
}

impl SessionSummary {
    /// `true` when the program halted of its own accord.
    pub fn halted(&self) -> bool {
        self.run.halted()
    }
}

/// A single-pass execution session: one CPU run, one shared loop
/// detector, any number of streaming consumers.
///
/// Register consumers with [`Session::observe_loops`] (loop events only),
/// [`Session::observe_instrs`] (retired instructions only) or
/// [`Session::observe_both`], then call [`Session::run`]. Per retired
/// instruction the dispatch order is fixed: first every instruction
/// observer (in registration order), then the loop events that
/// instruction produced (again in registration order) — so a
/// [`DualSink`] sees the closing branch *before* the iteration-end event
/// it causes, matching the bundled
/// [`DataSpecProfiler`](loopspec_dataspec::DataSpecProfiler) semantics.
///
/// At end of stream (halt or fuel exhaustion) the detector is flushed and
/// every loop/dual sink receives
/// [`on_stream_end`](LoopEventSink::on_stream_end) with the final
/// instruction count.
pub struct Session<'a> {
    detector: LoopDetector,
    slots: Vec<Slot<'a>>,
}

impl fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("detector", &self.detector)
            .field("sinks", &self.slots.len())
            .finish()
    }
}

impl Default for Session<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Session<'a> {
    /// A session with the paper's 16-entry CLS.
    pub fn new() -> Self {
        Session::with_cls(Cls::default())
    }

    /// A session detecting loops with a custom CLS (capacity ablations).
    pub fn with_cls(cls: Cls) -> Self {
        Session {
            detector: LoopDetector::new(cls),
            slots: Vec::new(),
        }
    }

    /// Registers a loop-event consumer.
    pub fn observe_loops(&mut self, sink: &'a mut dyn LoopEventSink) -> &mut Self {
        self.slots.push(Slot::Loops(sink));
        self
    }

    /// Registers a per-instruction consumer.
    pub fn observe_instrs(&mut self, tracer: &'a mut dyn Tracer) -> &mut Self {
        self.slots.push(Slot::Instrs(tracer));
        self
    }

    /// Registers a consumer of both streams (see [`DualSink`]).
    pub fn observe_both(&mut self, sink: &'a mut dyn DualSink) -> &mut Self {
        self.slots.push(Slot::Both(sink));
        self
    }

    /// Number of registered consumers.
    pub fn sinks(&self) -> usize {
        self.slots.len()
    }

    /// Executes `program` on a fresh [`Cpu`] in one pass, feeding every
    /// registered consumer, then ends the stream.
    ///
    /// Consumes the session: the sinks have received their end-of-stream
    /// callback and the borrows are released, so results can be read
    /// directly from the sink objects afterwards.
    ///
    /// # Errors
    ///
    /// Propagates any [`CpuError`]; sinks see the partial stream but no
    /// end-of-stream callback in that case.
    pub fn run(
        mut self,
        program: &loopspec_asm::Program,
        limits: RunLimits,
    ) -> Result<SessionSummary, CpuError> {
        let mut cpu = Cpu::new();
        let run = {
            let mut dispatch = Dispatch {
                detector: &mut self.detector,
                slots: &mut self.slots,
            };
            cpu.run(program, &mut dispatch, limits)?
        };
        let instructions = run.retired;
        // A halt flushes the CLS through the detector; a fuel-exhausted
        // run leaves executions open — close them at the cut, exactly
        // like the batch annotator does for truncated traces.
        let trailing = self.detector.flush(instructions);
        for slot in self.slots.iter_mut() {
            for ev in trailing {
                match slot {
                    Slot::Loops(s) => s.on_loop_event(ev),
                    Slot::Both(d) => d.on_loop_event(ev),
                    Slot::Instrs(_) => {}
                }
            }
            match slot {
                Slot::Loops(s) => s.on_stream_end(instructions),
                Slot::Both(d) => d.on_stream_end(instructions),
                Slot::Instrs(_) => {}
            }
        }
        Ok(SessionSummary { instructions, run })
    }
}

/// The internal fan-out tracer: one detector, many consumers.
struct Dispatch<'s, 'a> {
    detector: &'s mut LoopDetector,
    slots: &'s mut Vec<Slot<'a>>,
}

impl Tracer for Dispatch<'_, '_> {
    fn on_retire(&mut self, ev: &InstrEvent) {
        for slot in self.slots.iter_mut() {
            match slot {
                Slot::Instrs(t) => t.on_retire(ev),
                Slot::Both(d) => d.on_retire(ev),
                Slot::Loops(_) => {}
            }
        }
        if !matches!(ev.control.kind, ControlKind::None) {
            let events = self.detector.process(ev);
            for e in events {
                for slot in self.slots.iter_mut() {
                    match slot {
                        Slot::Loops(s) => s.on_loop_event(e),
                        Slot::Both(d) => d.on_loop_event(e),
                        Slot::Instrs(_) => {}
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_asm::ProgramBuilder;
    use loopspec_core::{CountingSink, EventCollector, LoopStats};
    use loopspec_cpu::CountingTracer;
    use loopspec_dataspec::{DataSpecProfiler, LiveInProfiler};
    use loopspec_mt::{AnnotatedTrace, Engine, StrPolicy, StreamEngine};

    fn program(build: impl FnOnce(&mut ProgramBuilder)) -> loopspec_asm::Program {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        b.finish().expect("assembles")
    }

    #[test]
    fn single_pass_matches_collect_then_replay() {
        let p = program(|b| {
            b.counted_loop(20, |b, _| {
                b.counted_loop(6, |b, _| b.work(5));
            });
        });

        // Legacy: dedicated collector run, then annotate + engine.
        let mut legacy = EventCollector::default();
        Cpu::new()
            .run(&p, &mut legacy, RunLimits::default())
            .unwrap();
        let (events, n) = legacy.into_parts();
        let batch = Engine::new(&AnnotatedTrace::build(&events, n), StrPolicy::new(), 4).run();

        // Streaming: everything in one pass.
        let mut collected = EventCollector::default();
        let mut engine = StreamEngine::new(StrPolicy::new(), 4);
        let mut session = Session::new();
        session
            .observe_loops(&mut collected)
            .observe_loops(&mut engine);
        let out = session.run(&p, RunLimits::default()).unwrap();

        assert!(out.halted());
        assert_eq!(out.instructions, n);
        assert_eq!(collected.events(), &events[..]);
        assert_eq!(collected.instructions(), n);
        assert_eq!(engine.report().unwrap(), &batch);
    }

    #[test]
    fn dual_sink_profiler_matches_bundled_profiler() {
        let p = program(|b| {
            let acc = b.alloc_reg();
            b.li(acc, 0);
            b.counted_loop(40, |b, i| {
                b.op(loopspec_isa::AluOp::Add, acc, acc, i);
                b.work(5);
            });
        });

        let mut bundled = DataSpecProfiler::new();
        Cpu::new()
            .run(&p, &mut bundled, RunLimits::default())
            .unwrap();

        let mut shared = LiveInProfiler::new();
        let mut session = Session::new();
        session.observe_both(&mut shared);
        session.run(&p, RunLimits::default()).unwrap();

        assert_eq!(shared.records(), bundled.records());
        assert_eq!(shared.report(), bundled.report());
    }

    #[test]
    fn instruction_tracers_see_every_retirement() {
        let p = program(|b| b.counted_loop(10, |b, _| b.work(3)));
        let mut counter = CountingTracer::default();
        let mut counting = CountingSink::default();
        let mut session = Session::new();
        session
            .observe_instrs(&mut counter)
            .observe_loops(&mut counting);
        let out = session.run(&p, RunLimits::default()).unwrap();
        assert_eq!(counter.retired, out.instructions);
        assert!(counting.events > 0);
        assert_eq!(counting.instructions, out.instructions);
    }

    #[test]
    fn fuel_exhaustion_flushes_open_executions() {
        let p = program(|b| b.loop_forever(|b| b.work(5)));
        let mut stats = LoopStats::new();
        let mut counting = CountingSink::default();
        let mut session = Session::new();
        session
            .observe_loops(&mut stats)
            .observe_loops(&mut counting);
        let out = session.run(&p, RunLimits::with_fuel(1000)).unwrap();
        assert!(!out.halted());
        assert_eq!(out.instructions, 1000);
        assert_eq!(counting.instructions, 1000);
        // The infinite loop's execution was closed by the session flush.
        let report = stats.report(out.instructions);
        assert_eq!(report.executions, 1);
    }

    #[test]
    fn empty_session_is_fine() {
        let p = program(|b| b.work(10));
        let out = Session::new().run(&p, RunLimits::default()).unwrap();
        assert!(out.halted());
        assert_eq!(out.instructions, 13); // 2 startup + 10 work + halt
    }

    #[test]
    fn custom_cls_capacity_is_respected() {
        // A 3-deep nest through a 1-entry CLS: evictions must occur.
        let p = program(|b| {
            b.counted_loop(4, |b, _| {
                b.counted_loop(4, |b, _| {
                    b.counted_loop(4, |b, _| b.work(2));
                });
            });
        });
        let mut v: Vec<loopspec_core::LoopEvent> = Vec::new();
        let mut session = Session::with_cls(Cls::new(1));
        session.observe_loops(&mut v);
        session.run(&p, RunLimits::default()).unwrap();
        assert!(v
            .iter()
            .any(|e| matches!(e, loopspec_core::LoopEvent::Evicted { .. })));
    }
}
