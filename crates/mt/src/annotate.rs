//! Trace annotation: from loop events to per-execution iteration maps.

use loopspec_core::{LoopEvent, LoopId};
use std::collections::HashMap;

/// Index of a loop execution within an [`AnnotatedTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExecId(pub u32);

/// One detected (multi-iteration) loop execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecInfo {
    /// The loop this execution belongs to.
    pub loop_id: LoopId,
    /// Stream positions of the detected iteration starts: index `j` holds
    /// the start of iteration `j + 2` (iteration 1 is undetectable).
    pub iter_starts: Vec<u64>,
    /// Stream position of the first instruction after the execution.
    pub end_pos: u64,
    /// Total iterations including the undetected first one.
    pub total_iters: u32,
    /// `false` when the execution was evicted from the CLS or still open
    /// at the end of the trace (its true extent is unknown).
    pub closed: bool,
}

impl ExecInfo {
    /// Stream position of iteration `iter` (≥ 2), if it exists.
    pub fn iter_pos(&self, iter: u32) -> Option<u64> {
        if iter < 2 {
            return None;
        }
        self.iter_starts.get((iter - 2) as usize).copied()
    }

    /// Number of iterations remaining after iteration `iter` starts.
    pub fn remaining_after(&self, iter: u32) -> u32 {
        self.total_iters.saturating_sub(iter)
    }
}

/// What happened at a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A loop execution was detected (always immediately followed by
    /// `IterStart { iter: 2 }` at the same position).
    ExecStart,
    /// Iteration `iter` (≥ 2) of the execution starts.
    IterStart {
        /// 1-based iteration index.
        iter: u32,
    },
    /// The execution ended (or was evicted / left open at trace end).
    ExecEnd,
}

/// A commit-ordered event in the annotated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Stream position at which the event takes effect.
    pub pos: u64,
    /// The execution concerned.
    pub exec: ExecId,
    /// The event kind.
    pub kind: TraceEventKind,
}

/// A dynamic instruction stream annotated with loop-iteration structure —
/// the input of the speculation [`Engine`](crate::Engine).
///
/// Built once per program run from the collected [`LoopEvent`] stream;
/// holds no per-instruction data, only per-iteration events, so it is
/// compact even for multi-million-instruction traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotatedTrace {
    /// Total committed instructions in the trace.
    pub instructions: u64,
    /// All detected executions, in detection order.
    pub execs: Vec<ExecInfo>,
    /// All events in commit order.
    pub events: Vec<TraceEvent>,
}

impl AnnotatedTrace {
    /// Builds the annotation from a loop-event stream and the trace's
    /// instruction count.
    ///
    /// Executions still open at the end of the stream (possible only if
    /// the trace was truncated before `halt`) are closed at position
    /// `instructions` and marked `closed: false`. One-shot loops carry no
    /// speculation opportunity (they are over when detected) and are
    /// skipped.
    pub fn build(events: &[LoopEvent], instructions: u64) -> Self {
        let mut execs: Vec<ExecInfo> = Vec::new();
        let mut out: Vec<TraceEvent> = Vec::new();
        // Loop id -> currently open execution (unique: the CLS holds at
        // most one execution of a loop at a time).
        let mut open: HashMap<LoopId, ExecId> = HashMap::new();

        for ev in events {
            match *ev {
                LoopEvent::ExecutionStart { loop_id, pos, .. } => {
                    let id = ExecId(execs.len() as u32);
                    execs.push(ExecInfo {
                        loop_id,
                        iter_starts: Vec::new(),
                        end_pos: instructions,
                        total_iters: 0,
                        closed: false,
                    });
                    let prev = open.insert(loop_id, id);
                    debug_assert!(prev.is_none(), "loop {loop_id} already open");
                    out.push(TraceEvent {
                        pos,
                        exec: id,
                        kind: TraceEventKind::ExecStart,
                    });
                }
                LoopEvent::IterationStart { loop_id, iter, pos } => {
                    if let Some(&id) = open.get(&loop_id) {
                        let info = &mut execs[id.0 as usize];
                        debug_assert_eq!(info.iter_starts.len() as u32 + 2, iter);
                        info.iter_starts.push(pos);
                        out.push(TraceEvent {
                            pos,
                            exec: id,
                            kind: TraceEventKind::IterStart { iter },
                        });
                    }
                }
                LoopEvent::ExecutionEnd {
                    loop_id,
                    iterations,
                    pos,
                }
                | LoopEvent::Evicted {
                    loop_id,
                    iterations,
                    pos,
                } => {
                    if let Some(id) = open.remove(&loop_id) {
                        let closed = matches!(ev, LoopEvent::ExecutionEnd { .. });
                        let info = &mut execs[id.0 as usize];
                        info.end_pos = pos;
                        info.total_iters = iterations;
                        info.closed = closed;
                        out.push(TraceEvent {
                            pos,
                            exec: id,
                            kind: TraceEventKind::ExecEnd,
                        });
                    }
                }
                LoopEvent::OneShot { .. } => {}
            }
        }

        // Close anything left open (truncated traces), in detection
        // order so the result is deterministic and matches the streaming
        // driver's trailing closes.
        let mut leftovers: Vec<ExecId> = open.drain().map(|(_, id)| id).collect();
        leftovers.sort();
        for id in leftovers {
            let info = &mut execs[id.0 as usize];
            info.total_iters = info.iter_starts.len() as u32 + 1;
            info.end_pos = instructions;
            out.push(TraceEvent {
                pos: instructions,
                exec: id,
                kind: TraceEventKind::ExecEnd,
            });
        }
        // Keep commit order; the detector already interleaves correctly,
        // but the trailing closes may need sorting by position (stable to
        // preserve innermost-first ExecEnd order at equal positions).
        out.sort_by_key(|e| e.pos);

        AnnotatedTrace {
            instructions,
            execs,
            events: out,
        }
    }

    /// Looks up an execution.
    pub fn exec(&self, id: ExecId) -> &ExecInfo {
        &self.execs[id.0 as usize]
    }

    /// Total detected iterations across all executions (from iteration 2
    /// on; the speculation opportunity count).
    pub fn detected_iterations(&self) -> u64 {
        self.execs.iter().map(|e| e.iter_starts.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_isa::Addr;

    fn lid(n: u32) -> LoopId {
        LoopId(Addr::new(n))
    }

    fn simple_stream() -> Vec<LoopEvent> {
        vec![
            LoopEvent::ExecutionStart {
                loop_id: lid(1),
                pos: 10,
                depth: 1,
            },
            LoopEvent::IterationStart {
                loop_id: lid(1),
                iter: 2,
                pos: 10,
            },
            LoopEvent::IterationStart {
                loop_id: lid(1),
                iter: 3,
                pos: 20,
            },
            LoopEvent::ExecutionEnd {
                loop_id: lid(1),
                iterations: 3,
                pos: 30,
            },
        ]
    }

    #[test]
    fn builds_single_execution() {
        let t = AnnotatedTrace::build(&simple_stream(), 40);
        assert_eq!(t.execs.len(), 1);
        let e = t.exec(ExecId(0));
        assert_eq!(e.loop_id, lid(1));
        assert_eq!(e.iter_starts, vec![10, 20]);
        assert_eq!(e.end_pos, 30);
        assert_eq!(e.total_iters, 3);
        assert!(e.closed);
        assert_eq!(t.detected_iterations(), 2);
        assert_eq!(t.events.len(), 4);
    }

    #[test]
    fn iter_pos_lookup() {
        let t = AnnotatedTrace::build(&simple_stream(), 40);
        let e = t.exec(ExecId(0));
        assert_eq!(e.iter_pos(1), None);
        assert_eq!(e.iter_pos(2), Some(10));
        assert_eq!(e.iter_pos(3), Some(20));
        assert_eq!(e.iter_pos(4), None);
        assert_eq!(e.remaining_after(2), 1);
        assert_eq!(e.remaining_after(3), 0);
    }

    #[test]
    fn nested_executions_of_same_loop_are_sequential() {
        // Two executions of loop 1 back to back.
        let mut ev = simple_stream();
        ev.extend(simple_stream().into_iter().map(|e| match e {
            LoopEvent::ExecutionStart {
                loop_id,
                pos,
                depth,
            } => LoopEvent::ExecutionStart {
                loop_id,
                pos: pos + 100,
                depth,
            },
            LoopEvent::IterationStart { loop_id, iter, pos } => LoopEvent::IterationStart {
                loop_id,
                iter,
                pos: pos + 100,
            },
            LoopEvent::ExecutionEnd {
                loop_id,
                iterations,
                pos,
            } => LoopEvent::ExecutionEnd {
                loop_id,
                iterations,
                pos: pos + 100,
            },
            other => other,
        }));
        let t = AnnotatedTrace::build(&ev, 200);
        assert_eq!(t.execs.len(), 2);
        assert_eq!(t.exec(ExecId(1)).iter_starts, vec![110, 120]);
    }

    #[test]
    fn open_executions_are_closed_at_trace_end() {
        let mut ev = simple_stream();
        ev.truncate(3); // drop the ExecutionEnd
        let t = AnnotatedTrace::build(&ev, 99);
        let e = t.exec(ExecId(0));
        assert!(!e.closed);
        assert_eq!(e.end_pos, 99);
        assert_eq!(e.total_iters, 3); // 2 detected starts + first iter
        assert!(matches!(
            t.events.last().unwrap().kind,
            TraceEventKind::ExecEnd
        ));
    }

    #[test]
    fn one_shots_are_skipped() {
        let ev = vec![LoopEvent::OneShot {
            loop_id: lid(9),
            pos: 5,
            depth: 1,
        }];
        let t = AnnotatedTrace::build(&ev, 10);
        assert!(t.execs.is_empty());
        assert!(t.events.is_empty());
    }

    #[test]
    fn evicted_executions_are_closed_unclosed() {
        let ev = vec![
            LoopEvent::ExecutionStart {
                loop_id: lid(1),
                pos: 10,
                depth: 1,
            },
            LoopEvent::IterationStart {
                loop_id: lid(1),
                iter: 2,
                pos: 10,
            },
            LoopEvent::Evicted {
                loop_id: lid(1),
                iterations: 2,
                pos: 15,
            },
        ];
        let t = AnnotatedTrace::build(&ev, 20);
        let e = t.exec(ExecId(0));
        assert!(!e.closed);
        assert_eq!(e.end_pos, 15);
    }
}
