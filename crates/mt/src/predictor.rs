//! Iteration-count prediction — the speculation-facing use of the LET.
//!
//! "In order to implement a stride predictor, each LET entry contains, in
//! addition to the T and R fields, the last iteration count and the
//! difference between the previous two counts" (paper §2.3); STR adds a
//! two-bit saturating confidence counter on the stride (§3.1.2).

use loopspec_core::{LoopId, LoopTable};

/// What the predictor knows about a loop's iteration count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterPrediction {
    /// Reliable stride: the predicted total is `last_count + stride`.
    Stride {
        /// Predicted total iterations of the current execution.
        total: u32,
    },
    /// The stride is not confident but the last execution's count is
    /// known; predict a repeat.
    LastCount {
        /// Predicted total iterations (= the last observed count).
        total: u32,
    },
    /// Nothing is known about this loop yet.
    Unknown,
}

#[derive(Debug, Clone, Copy)]
struct PredEntry {
    last_count: u32,
    stride: i64,
    has_stride: bool,
    conf: u8, // two-bit saturating counter; reliable when >= 2
}

/// LET-backed iteration-count stride predictor.
///
/// Updated by the engine at every loop-execution end; queried at every
/// iteration start to size the speculation burst. By default the table is
/// unbounded ("enough capacity", as the paper assumes for the speculation
/// experiments); [`IterPredictor::with_capacity`] models a finite LET for
/// ablations.
///
/// ```
/// use loopspec_mt::{IterPredictor, IterPrediction};
/// use loopspec_core::LoopId;
/// use loopspec_isa::Addr;
///
/// let mut p = IterPredictor::new();
/// let l = LoopId(Addr::new(4));
/// assert_eq!(p.predict(l), IterPrediction::Unknown);
/// p.record_execution(l, 10);
/// assert_eq!(p.predict(l), IterPrediction::LastCount { total: 10 });
/// p.record_execution(l, 12);
/// p.record_execution(l, 14);
/// p.record_execution(l, 16);
/// // stride 2 repeated three times: reliable.
/// assert_eq!(p.predict(l), IterPrediction::Stride { total: 18 });
/// ```
#[derive(Debug, Clone)]
pub struct IterPredictor {
    table: LoopTable<PredEntry>,
}

impl Default for IterPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl IterPredictor {
    /// Creates an unbounded predictor.
    pub fn new() -> Self {
        IterPredictor {
            table: LoopTable::unbounded(),
        }
    }

    /// Creates a predictor backed by a finite LRU table of `capacity`
    /// entries (recency = last execution end).
    pub fn with_capacity(capacity: usize) -> Self {
        IterPredictor {
            table: LoopTable::new(capacity),
        }
    }

    /// Records that an execution of `loop_id` completed with `count`
    /// iterations.
    pub fn record_execution(&mut self, loop_id: LoopId, count: u32) {
        match self.table.get_mut(loop_id) {
            Some(e) => {
                let new_stride = count as i64 - e.last_count as i64;
                if e.has_stride {
                    if new_stride == e.stride {
                        e.conf = (e.conf + 1).min(3);
                    } else {
                        if e.conf == 0 {
                            e.stride = new_stride;
                        }
                        e.conf = e.conf.saturating_sub(1);
                    }
                } else {
                    e.stride = new_stride;
                    e.has_stride = true;
                    e.conf = 1;
                }
                e.last_count = count;
            }
            None => {
                self.table.insert(
                    loop_id,
                    PredEntry {
                        last_count: count,
                        stride: 0,
                        has_stride: false,
                        conf: 0,
                    },
                );
            }
        }
        self.table.touch(loop_id);
    }

    /// Predicts the total iteration count of the current execution of
    /// `loop_id`.
    pub fn predict(&self, loop_id: LoopId) -> IterPrediction {
        match self.table.get(loop_id) {
            None => IterPrediction::Unknown,
            Some(e) => {
                if e.has_stride && e.conf >= 2 {
                    let total = (e.last_count as i64 + e.stride).max(0) as u32;
                    IterPrediction::Stride { total }
                } else {
                    IterPrediction::LastCount {
                        total: e.last_count,
                    }
                }
            }
        }
    }

    /// Number of loops currently tracked.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when no loop has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// Serializes the full LET contents — per-loop last count, stride,
/// confidence, and the LRU ordering — so a restored engine predicts
/// exactly what the uninterrupted one would.
impl loopspec_core::SnapshotState for IterPredictor {
    fn save_state(&self, out: &mut loopspec_core::snap::Enc) {
        self.table.save_state_with(out, |e, out| {
            out.u32(e.last_count);
            out.i64(e.stride);
            out.bool(e.has_stride);
            out.u8(e.conf);
        });
    }

    fn load_state(
        &mut self,
        src: &mut loopspec_core::snap::Dec<'_>,
    ) -> Result<(), loopspec_core::snap::SnapError> {
        self.table.load_state_with(src, |src| {
            Ok(PredEntry {
                last_count: src.u32()?,
                stride: src.i64()?,
                has_stride: src.bool()?,
                conf: src.u8()?,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_isa::Addr;

    fn lid(n: u32) -> LoopId {
        LoopId(Addr::new(n))
    }

    #[test]
    fn unknown_before_any_execution() {
        let p = IterPredictor::new();
        assert_eq!(p.predict(lid(1)), IterPrediction::Unknown);
        assert!(p.is_empty());
    }

    #[test]
    fn last_count_after_one_execution() {
        let mut p = IterPredictor::new();
        p.record_execution(lid(1), 7);
        assert_eq!(p.predict(lid(1)), IterPrediction::LastCount { total: 7 });
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn constant_count_becomes_reliable_zero_stride() {
        let mut p = IterPredictor::new();
        for _ in 0..3 {
            p.record_execution(lid(1), 10);
        }
        assert_eq!(p.predict(lid(1)), IterPrediction::Stride { total: 10 });
    }

    #[test]
    fn confidence_decays_on_noise() {
        let mut p = IterPredictor::new();
        for c in [10, 12, 14, 16] {
            p.record_execution(lid(1), c);
        }
        assert!(matches!(p.predict(lid(1)), IterPrediction::Stride { .. }));
        // Two erratic counts drop the two-bit counter below threshold.
        p.record_execution(lid(1), 3);
        p.record_execution(lid(1), 50);
        assert!(matches!(
            p.predict(lid(1)),
            IterPrediction::LastCount { total: 50 }
        ));
    }

    #[test]
    fn stride_retrains_after_confidence_bottoms_out() {
        let mut p = IterPredictor::new();
        for c in [10, 12, 14] {
            p.record_execution(lid(1), c); // stride 2, conf grows
        }
        // Switch to stride 5: conf decays to 0, then the stride retrains.
        for c in [19, 24, 29, 34, 39] {
            p.record_execution(lid(1), c);
        }
        assert_eq!(p.predict(lid(1)), IterPrediction::Stride { total: 44 });
    }

    #[test]
    fn negative_stride_saturates_at_zero_total() {
        let mut p = IterPredictor::new();
        for c in [9, 6, 3] {
            p.record_execution(lid(1), c);
        }
        // stride -3 reliable; prediction 3 - 3 = 0.
        assert_eq!(p.predict(lid(1)), IterPrediction::Stride { total: 0 });
    }

    #[test]
    fn finite_capacity_evicts() {
        let mut p = IterPredictor::with_capacity(2);
        p.record_execution(lid(1), 5);
        p.record_execution(lid(2), 5);
        p.record_execution(lid(3), 5);
        assert_eq!(p.predict(lid(1)), IterPrediction::Unknown);
        assert!(matches!(
            p.predict(lid(3)),
            IterPrediction::LastCount { .. }
        ));
    }

    #[test]
    fn loops_are_independent() {
        let mut p = IterPredictor::new();
        p.record_execution(lid(1), 100);
        p.record_execution(lid(2), 3);
        assert_eq!(p.predict(lid(1)), IterPrediction::LastCount { total: 100 });
        assert_eq!(p.predict(lid(2)), IterPrediction::LastCount { total: 3 });
    }
}
