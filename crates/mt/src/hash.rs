//! A tiny multiplicative hasher for the engine's small-integer keys.
//!
//! The speculation engine touches its `segments` and `spec` maps on
//! every iteration event — several lookups per event per engine
//! configuration, millions of times per grid pass. The keys are dense
//! machine integers (execution ordinals, iteration indices, loop target
//! addresses), for which `std`'s DoS-resistant SipHash costs more than
//! the lookup itself. This is the classic Fx/FNV-style mix: one rotate,
//! one xor, one multiply per word. It is **not** collision-resistant
//! against adversarial keys and must only be used for internal,
//! simulator-generated keys.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (the rustc `FxHasher` recipe) over 64-bit words.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FxHasher(u64);

/// Knuth's 64-bit multiplicative-hashing constant (2^64 / φ, odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// A `HashMap` keyed by trusted small integers, hashed with [`FxHasher`].
pub(crate) type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FastMap<(u32, u32), u64> = FastMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 2), i as u64);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i * 2)), Some(&(i as u64)));
            assert_eq!(m.get(&(i, i * 2 + 1)), None);
        }
    }

    #[test]
    fn nearby_keys_spread() {
        // Dense consecutive keys must not collapse onto few buckets: the
        // low 7 bits (hashbrown's control bytes use the high bits, the
        // bucket index the low ones) should take many distinct values.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..128u32 {
            let mut h = FxHasher::default();
            h.write_u32(i);
            low_bits.insert(h.finish() & 0x7f);
        }
        assert!(low_bits.len() > 64, "only {} distinct", low_bits.len());
    }
}
