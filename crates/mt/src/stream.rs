//! The streaming engine driver: single-pass speculation with
//! O(live-loops + run-ahead window) memory.
//!
//! [`StreamEngine`] consumes raw [`LoopEvent`]s exactly as the CLS emits
//! them — no [`AnnotatedTrace`](crate::AnnotatedTrace), no `Vec` of the
//! whole run — and produces an [`EngineReport`] **bit-identical** to the
//! batch [`Engine`](crate::Engine) for every history-based policy (IDLE,
//! STR, STR(i), filters). This is the shape of the paper's hardware: the
//! speculation logic watches the committed stream once and decides on the
//! fly.
//!
//! ## Why a bounded buffer is needed at all
//!
//! One decision consults the *near future*: when a burst is launched, the
//! engine skips iterations whose start the current thread's speculative
//! run-ahead has already executed (they would be discarded as stale at
//! verification). The run-ahead extends at most `horizon - pos`
//! instructions past the current position — the distance the verified
//! thread ran ahead, bounded by one iteration body. The streaming driver
//! therefore *delays* each iteration event until the stream frontier
//! passes [`EngineCore::iter_start_horizon`](crate::Engine) for it,
//! buffering the interim events. The buffer length is the run-ahead
//! window, not the trace: memory stays proportional to live loop nesting
//! plus one iteration of run-ahead, which the bounded-memory regression
//! test pins down.
//!
//! ## Example
//!
//! ```
//! use loopspec_asm::ProgramBuilder;
//! use loopspec_core::{LoopDetector, LoopEventSink};
//! use loopspec_cpu::{Cpu, InstrEvent, RunLimits, Tracer};
//! use loopspec_mt::{StrPolicy, StreamEngine};
//!
//! struct Drive {
//!     det: LoopDetector,
//!     engine: StreamEngine<StrPolicy>,
//! }
//! impl Tracer for Drive {
//!     fn on_retire(&mut self, ev: &InstrEvent) {
//!         for e in self.det.process(ev) {
//!             self.engine.on_loop_event(e);
//!         }
//!     }
//! }
//!
//! let mut b = ProgramBuilder::new();
//! b.counted_loop(50, |b, _| b.work(20));
//! let program = b.finish()?;
//!
//! let mut d = Drive {
//!     det: LoopDetector::default(),
//!     engine: StreamEngine::new(StrPolicy::new(), 4),
//! };
//! let summary = Cpu::new().run(&program, &mut d, RunLimits::default())?;
//! d.engine.on_stream_end(summary.retired);
//! let report = d.engine.report().expect("finished");
//! assert!(report.tpc() > 1.5, "4 TUs should overlap iterations");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::VecDeque;
use std::fmt;

use loopspec_core::{LoopEvent, LoopEventSink, LoopId};

use crate::engine::{EngineCore, EngineReport};
use crate::oracle::OracleFeed;
use crate::policy::{IdlePolicy, SpeculationPolicy, StrNestedPolicy, StrPolicy};

/// Why a streaming engine could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The policy consults ground truth about the future
    /// ([`SpeculationPolicy::requires_future_knowledge`]) and no
    /// [`OracleFeed`] was supplied — use
    /// [`StreamEngine::with_feed`] /
    /// [`StreamEngine::unbounded_with_feed`] with a phase-1
    /// [`IterationCountLog`](crate::IterationCountLog) recording.
    NeedsFeed {
        /// The offending policy's display name.
        policy: &'static str,
    },
    /// The TU count is outside the supported `2..=4096` range.
    BadTus {
        /// The rejected count.
        got: usize,
    },
    /// The policy could over-speculate without a TU bound
    /// (only oracle-style policies report
    /// [`SpeculationPolicy::supports_unbounded_tus`]).
    Unbounded {
        /// The offending policy's display name.
        policy: &'static str,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::NeedsFeed { policy } => write!(
                f,
                "policy {policy} requires future knowledge and cannot run \
                 streaming without an OracleFeed (two-phase: record an \
                 IterationCountLog, then construct with StreamEngine::with_feed)"
            ),
            StreamError::BadTus { got } => {
                write!(f, "num_tus must be in 2..=4096 (got {got})")
            }
            StreamError::Unbounded { policy } => {
                write!(f, "policy {policy} cannot run with unbounded TUs")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Incremental annotation of one live (or end-pending) loop execution —
/// the streaming replacement for
/// [`ExecInfo`](crate::ExecInfo).
#[derive(Debug)]
pub(crate) struct ExecAnn {
    pub(crate) loop_id: LoopId,
    /// Known iteration starts `(iter, pos)` not yet consumed by the
    /// engine — the lookahead the spawn decision may consult. Pruned as
    /// iteration events are processed, so it holds the run-ahead window,
    /// not the execution's history.
    pub(crate) iters: VecDeque<(u32, u64)>,
    /// Highest iteration index observed (1 before any detected start, as
    /// the first iteration is undetectable).
    pub(crate) last_iter: u32,
    /// The end event has been observed (all iteration starts are known).
    pub(crate) ended: bool,
}

/// Per-execution annotations in a dense slab keyed by execution
/// ordinal.
///
/// Execution ordinals are assigned in detection order, so new entries
/// always append; entries die when their end event is delivered, in
/// roughly stack order, so the slab stays as small as the live window.
/// This is the streaming fan-out's hottest lookup (twice per iteration
/// event per engine) — an index subtraction instead of a `HashMap`
/// probe.
#[derive(Debug, Default)]
pub(crate) struct ExecSlab {
    /// Ordinal of `slots[0]`.
    base: u32,
    slots: VecDeque<Option<ExecAnn>>,
    live: usize,
}

impl ExecSlab {
    /// Appends the annotation for the next execution ordinal.
    pub(crate) fn push(&mut self, ann: ExecAnn) {
        self.slots.push_back(Some(ann));
        self.live += 1;
    }

    /// The slab as `(base_ordinal, contiguous_slots)` — hot readers
    /// (the grid's lane pass) index a plain slice instead of paying the
    /// ring-buffer wrap check per access.
    pub(crate) fn contiguous(&mut self) -> (u32, &[Option<ExecAnn>]) {
        (self.base, self.slots.make_contiguous())
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, exec: u32) -> Option<&mut ExecAnn> {
        let i = exec.checked_sub(self.base)? as usize;
        self.slots.get_mut(i)?.as_mut()
    }

    pub(crate) fn remove(&mut self, exec: u32) -> Option<ExecAnn> {
        let i = exec.checked_sub(self.base)? as usize;
        let ann = self.slots.get_mut(i)?.take();
        if ann.is_some() {
            self.live -= 1;
        }
        // Reclaim the dead prefix so `slots` tracks the live window.
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
        ann
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// A buffered boundary event awaiting delivery to the engine core.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Pending {
    Start {
        exec: u32,
    },
    Iter {
        exec: u32,
        iter: u32,
        pos: u64,
    },
    End {
        exec: u32,
        pos: u64,
        closed: bool,
        iterations: u32,
    },
}

/// Appends one [`Pending`] entry (tag byte + fields).
pub(crate) fn write_pending(out: &mut loopspec_core::snap::Enc, p: &Pending) {
    match *p {
        Pending::Start { exec } => {
            out.u8(0);
            out.u32(exec);
        }
        Pending::Iter { exec, iter, pos } => {
            out.u8(1);
            out.u32(exec);
            out.u32(iter);
            out.u64(pos);
        }
        Pending::End {
            exec,
            pos,
            closed,
            iterations,
        } => {
            out.u8(2);
            out.u32(exec);
            out.u64(pos);
            out.bool(closed);
            out.u32(iterations);
        }
    }
}

/// Reads one [`Pending`] entry written by [`write_pending`].
pub(crate) fn read_pending(
    src: &mut loopspec_core::snap::Dec<'_>,
) -> Result<Pending, loopspec_core::snap::SnapError> {
    Ok(match src.u8()? {
        0 => Pending::Start { exec: src.u32()? },
        1 => Pending::Iter {
            exec: src.u32()?,
            iter: src.u32()?,
            pos: src.u64()?,
        },
        2 => Pending::End {
            exec: src.u32()?,
            pos: src.u64()?,
            closed: src.bool()?,
            iterations: src.u32()?,
        },
        _ => {
            return Err(loopspec_core::snap::SnapError::Corrupt {
                what: "pending entry tag",
            })
        }
    })
}

/// Validates a finite TU count — the single source of the supported
/// range and of the [`StreamError::BadTus`] error, shared by every
/// streaming driver (typed or panicking) and by the `dist` layer's
/// job admission, so a bad TU count reads identically wherever it is
/// rejected.
pub fn validate_tus(num_tus: usize) -> Result<(), StreamError> {
    if (2..=4096).contains(&num_tus) {
        Ok(())
    } else {
        Err(StreamError::BadTus { got: num_tus })
    }
}

/// Panicking form of [`validate_tus`] for the infallible constructors.
///
/// # Panics
///
/// Panics unless `2 <= num_tus <= 4096`.
pub(crate) fn check_tus(num_tus: usize) {
    if let Err(e) = validate_tus(num_tus) {
        panic!("{e}");
    }
}

/// The streaming annotator: turns raw [`LoopEvent`]s into the
/// [`Pending`] boundary entries an [`EngineCore`] consumes, assigning
/// dense execution ordinals in detection order and maintaining the
/// per-execution iteration-start windows.
///
/// This is the **single copy** of the annotation rules every streaming
/// driver shares — [`StreamEngine`] (one engine, one pending queue) and
/// [`EngineGrid`](crate::EngineGrid) (many engine lanes over one shared
/// queue) differ only in how they *deliver* the entries, never in how
/// the stream is annotated, so the equivalence-critical logic cannot
/// drift between them.
#[derive(Debug, Default)]
pub(crate) struct Annotator {
    /// Loop id → ordinal of its open execution. At most the CLS nesting
    /// depth entries (16 in the paper), so a linear scan beats any
    /// hash.
    open_by_loop: Vec<(LoopId, u32)>,
    /// Per-execution annotation, alive until its end entry is retired
    /// by the driver.
    pub(crate) execs: ExecSlab,
    next_exec: u32,
    /// Highest event position observed; all events at positions `<`
    /// frontier are known.
    pub(crate) frontier: u64,
    /// Iteration starts currently retained across all windows (the
    /// driver decrements as it prunes).
    pub(crate) buffered_iters: usize,
    /// Total loop events observed.
    pub(crate) events_seen: u64,
}

impl Annotator {
    /// Annotates one event, appending boundary entries to `out`.
    pub(crate) fn ingest(&mut self, ev: &LoopEvent, out: &mut VecDeque<Pending>) {
        self.events_seen += 1;
        debug_assert!(ev.pos() >= self.frontier, "event positions regressed");
        self.frontier = ev.pos();
        match *ev {
            LoopEvent::ExecutionStart { loop_id, .. } => {
                let exec = self.next_exec;
                self.next_exec += 1;
                debug_assert!(
                    self.open_by_loop.iter().all(|&(l, _)| l != loop_id),
                    "loop {loop_id} already open"
                );
                self.open_by_loop.push((loop_id, exec));
                self.execs.push(ExecAnn {
                    loop_id,
                    iters: VecDeque::new(),
                    last_iter: 1,
                    ended: false,
                });
                out.push_back(Pending::Start { exec });
            }
            LoopEvent::IterationStart { loop_id, iter, pos } => {
                // Iterations of evicted executions are ignored, exactly
                // like the batch annotator.
                if let Some(&(_, exec)) = self.open_by_loop.iter().find(|&&(l, _)| l == loop_id) {
                    let ann = self.execs.get_mut(exec).expect("open exec has annotation");
                    debug_assert_eq!(ann.last_iter + 1, iter);
                    ann.last_iter = iter;
                    ann.iters.push_back((iter, pos));
                    self.buffered_iters += 1;
                    out.push_back(Pending::Iter { exec, iter, pos });
                }
            }
            LoopEvent::ExecutionEnd {
                loop_id,
                iterations,
                pos,
            }
            | LoopEvent::Evicted {
                loop_id,
                iterations,
                pos,
            } => {
                if let Some(i) = self.open_by_loop.iter().position(|&(l, _)| l == loop_id) {
                    let (_, exec) = self.open_by_loop.swap_remove(i);
                    let closed = matches!(ev, LoopEvent::ExecutionEnd { .. });
                    self.execs
                        .get_mut(exec)
                        .expect("open exec has annotation")
                        .ended = true;
                    out.push_back(Pending::End {
                        exec,
                        pos,
                        closed,
                        iterations,
                    });
                }
            }
            LoopEvent::OneShot { .. } => {}
        }
    }

    /// Serializes the annotation state: open-execution bindings (in
    /// insertion order — it is scanned linearly, so order is part of the
    /// state), the per-execution slab with its iteration-start windows,
    /// and the stream cursors.
    pub(crate) fn save_state(&self, out: &mut loopspec_core::snap::Enc) {
        out.u64(self.open_by_loop.len() as u64);
        for &(l, e) in &self.open_by_loop {
            out.u32(l.0.index());
            out.u32(e);
        }
        out.u32(self.execs.base);
        out.u64(self.execs.slots.len() as u64);
        for slot in &self.execs.slots {
            match slot {
                None => out.bool(false),
                Some(ann) => {
                    out.bool(true);
                    out.u32(ann.loop_id.0.index());
                    out.u64(ann.iters.len() as u64);
                    for &(iter, pos) in &ann.iters {
                        out.u32(iter);
                        out.u64(pos);
                    }
                    out.u32(ann.last_iter);
                    out.bool(ann.ended);
                }
            }
        }
        out.u32(self.next_exec);
        out.u64(self.frontier);
        out.u64(self.buffered_iters as u64);
        out.u64(self.events_seen);
    }

    /// Restores state written by [`Annotator::save_state`].
    pub(crate) fn load_state(
        &mut self,
        src: &mut loopspec_core::snap::Dec<'_>,
    ) -> Result<(), loopspec_core::snap::SnapError> {
        let n = src.count()?;
        self.open_by_loop.clear();
        for _ in 0..n {
            let l = LoopId(loopspec_isa::Addr::new(src.u32()?));
            let e = src.u32()?;
            self.open_by_loop.push((l, e));
        }
        self.execs.base = src.u32()?;
        let n = src.count()?;
        self.execs.slots.clear();
        self.execs.live = 0;
        for _ in 0..n {
            if !src.bool()? {
                self.execs.slots.push_back(None);
                continue;
            }
            let loop_id = LoopId(loopspec_isa::Addr::new(src.u32()?));
            // 12 encoded bytes per retained iteration start (u32 + u64).
            let iters_n = src.count_elems(12)?;
            let mut iters = VecDeque::with_capacity(iters_n);
            for _ in 0..iters_n {
                let iter = src.u32()?;
                let pos = src.u64()?;
                iters.push_back((iter, pos));
            }
            let last_iter = src.u32()?;
            let ended = src.bool()?;
            self.execs.slots.push_back(Some(ExecAnn {
                loop_id,
                iters,
                last_iter,
                ended,
            }));
            self.execs.live += 1;
        }
        self.next_exec = src.u32()?;
        self.frontier = src.u64()?;
        self.buffered_iters = src.u64()? as usize;
        self.events_seen = src.u64()?;
        Ok(())
    }

    /// Closes executions left open by a truncated stream, in detection
    /// order — mirroring the batch annotator's trailing closes.
    pub(crate) fn close_leftovers(&mut self, instructions: u64, out: &mut VecDeque<Pending>) {
        let mut leftovers: Vec<u32> = self.open_by_loop.iter().map(|&(_, e)| e).collect();
        leftovers.sort_unstable();
        for exec in leftovers {
            let ann = self.execs.get_mut(exec).expect("open exec has annotation");
            ann.ended = true;
            out.push_back(Pending::End {
                exec,
                pos: instructions,
                closed: false,
                iterations: ann.last_iter,
            });
        }
        self.open_by_loop.clear();
    }
}

/// Single-pass speculation engine: a [`LoopEventSink`] that mirrors the
/// batch [`Engine`](crate::Engine) decision-for-decision while retaining
/// only a bounded window of events.
///
/// Feed it the detector's event stream (directly, or registered in a
/// `loopspec_pipeline::Session`), call
/// [`on_stream_end`](LoopEventSink::on_stream_end) with the final
/// instruction count, then read [`StreamEngine::report`].
#[derive(Debug)]
pub struct StreamEngine<P> {
    core: EngineCore<P>,
    /// The shared annotation rules (see [`Annotator`]).
    ann: Annotator,
    pending: VecDeque<Pending>,
    report: Option<EngineReport>,
    peak_buffered: usize,
    /// Phase-2 future knowledge for oracle policies (`None` for the
    /// history-based policies, which never consult it).
    feed: Option<OracleFeed>,
}

impl<P: SpeculationPolicy> StreamEngine<P> {
    /// Creates a streaming engine with `num_tus` thread units.
    ///
    /// # Panics
    ///
    /// Panics when [`StreamEngine::try_new`] would return an error —
    /// the TU count is outside `2..=4096`, or the policy requires
    /// future knowledge (construct with [`StreamEngine::with_feed`]
    /// and a phase-1 [`IterationCountLog`](crate::IterationCountLog)
    /// recording instead).
    pub fn new(policy: P, num_tus: usize) -> Self {
        Self::try_new(policy, num_tus).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a streaming engine with `num_tus` thread units,
    /// reporting invalid configurations as typed errors.
    ///
    /// # Errors
    ///
    /// [`StreamError::BadTus`] unless `2 <= num_tus <= 4096`;
    /// [`StreamError::NeedsFeed`] when the policy requires future
    /// knowledge (supply an [`OracleFeed`] via
    /// [`StreamEngine::with_feed`]).
    pub fn try_new(policy: P, num_tus: usize) -> Result<Self, StreamError> {
        if policy.requires_future_knowledge() {
            return Err(StreamError::NeedsFeed {
                policy: policy.name(),
            });
        }
        Self::build(policy, num_tus, None)
    }

    /// Creates a streaming engine whose policy may consult future
    /// knowledge, answered from `feed` (recorded by a phase-1
    /// [`IterationCountLog`](crate::IterationCountLog) pass over the
    /// same stream) — the two-phase streaming oracle.
    ///
    /// # Errors
    ///
    /// [`StreamError::BadTus`] unless `2 <= num_tus <= 4096`.
    pub fn with_feed(policy: P, num_tus: usize, feed: OracleFeed) -> Result<Self, StreamError> {
        Self::build(policy, num_tus, Some(feed))
    }

    /// Creates a streaming engine with an **unbounded** TU pool — the
    /// ideal machine of the paper's Figure 5 — fed future knowledge
    /// from `feed`.
    ///
    /// # Errors
    ///
    /// [`StreamError::Unbounded`] when the policy could over-speculate
    /// without a TU bound (only oracle-style policies report
    /// [`SpeculationPolicy::supports_unbounded_tus`]).
    pub fn unbounded_with_feed(policy: P, feed: OracleFeed) -> Result<Self, StreamError> {
        if !policy.supports_unbounded_tus() {
            return Err(StreamError::Unbounded {
                policy: policy.name(),
            });
        }
        Ok(StreamEngine {
            core: EngineCore::new(policy, u64::MAX, None),
            ann: Annotator::default(),
            pending: VecDeque::new(),
            report: None,
            peak_buffered: 0,
            feed: Some(feed),
        })
    }

    fn build(policy: P, num_tus: usize, feed: Option<OracleFeed>) -> Result<Self, StreamError> {
        validate_tus(num_tus)?;
        Ok(StreamEngine {
            core: EngineCore::new(policy, num_tus as u64, Some(num_tus)),
            ann: Annotator::default(),
            pending: VecDeque::new(),
            report: None,
            peak_buffered: 0,
            feed,
        })
    }

    /// The report, once the stream has ended (`None` before).
    pub fn report(&self) -> Option<&EngineReport> {
        self.report.as_ref()
    }

    /// Consumes the engine, returning the report.
    ///
    /// # Panics
    ///
    /// Panics if the stream has not ended yet.
    pub fn into_report(self) -> EngineReport {
        self.report
            .expect("StreamEngine::into_report before on_stream_end")
    }

    /// Peak number of simultaneously buffered items (pending boundary
    /// events plus retained iteration starts) over the whole run — the
    /// quantity the bounded-memory regression test asserts stays
    /// O(live nesting + run-ahead window), not O(trace).
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Total loop events observed.
    pub fn events_seen(&self) -> u64 {
        self.ann.events_seen
    }

    fn note_peak(&mut self) {
        let now = self.pending.len() + self.ann.buffered_iters + self.ann.execs.len();
        if now > self.peak_buffered {
            self.peak_buffered = now;
        }
    }

    /// Processes every pending event whose decision horizon has been
    /// reached (`finished` lifts the horizon entirely).
    fn drain(&mut self, finished: bool) {
        while let Some(&head) = self.pending.front() {
            match head {
                Pending::Start { exec } => {
                    self.core.exec_start(exec);
                    self.pending.pop_front();
                }
                Pending::End {
                    exec,
                    pos,
                    closed,
                    iterations,
                } => {
                    let ann = self
                        .ann
                        .execs
                        .remove(exec)
                        .expect("pending end has annotation");
                    self.ann.buffered_iters -= ann.iters.len();
                    self.core
                        .exec_end(exec, ann.loop_id, pos, closed, iterations);
                    self.pending.pop_front();
                }
                Pending::Iter { exec, iter, pos } => {
                    let ann = self
                        .ann
                        .execs
                        .get_mut(exec)
                        .expect("pending iter has annotation");
                    // The spawn decision may consult iteration starts up
                    // to the horizon; deliver only once every event below
                    // it is known (frontier passed it, the execution
                    // ended, or the stream is over).
                    if !(finished || ann.ended) {
                        let horizon = self.core.iter_start_horizon(exec, iter, pos);
                        if self.ann.frontier < horizon {
                            break;
                        }
                    }
                    // Starts at or before the current iteration can no
                    // longer be consulted — spawn lookups ask only about
                    // j > iter. Pruning them is what bounds memory.
                    let mut pruned = 0;
                    while ann.iters.front().is_some_and(|&(j, _)| j <= iter) {
                        ann.iters.pop_front();
                        pruned += 1;
                    }
                    let loop_id = ann.loop_id;
                    let iters = &ann.iters;
                    let lookup =
                        move |j: u32| iters.iter().find(|&&(k, _)| k == j).map(|&(_, p)| p);
                    // Future knowledge for oracle policies: the phase-1
                    // feed answers what the batch engine read off the
                    // annotated trace. History policies never look.
                    let remaining = self
                        .feed
                        .as_ref()
                        .map_or(0, |f| f.remaining_after(exec, iter));
                    self.core
                        .iter_start(exec, loop_id, iter, pos, &lookup, remaining);
                    self.ann.buffered_iters -= pruned;
                    self.pending.pop_front();
                }
            }
        }
    }
}

/// Serializes the engine's full mid-stream state — decision core
/// (timing cursor, live segments, predictor, statistics, policy state),
/// shared annotation, and the pending boundary-event queue — so a
/// freshly constructed engine with the same policy and TU count can
/// take over the stream at the exact retirement boundary and finish
/// with a **bit-identical** [`EngineReport`] (enforced by the
/// `checkpoint_resume` suite).
///
/// ```
/// use loopspec_core::{LoopEventSink, SnapshotState};
/// use loopspec_core::snap::{Dec, Enc};
/// use loopspec_mt::{StrPolicy, StreamEngine};
/// # use loopspec_asm::ProgramBuilder;
/// # use loopspec_core::EventCollector;
/// # use loopspec_cpu::{Cpu, RunLimits};
///
/// # let mut b = ProgramBuilder::new();
/// # b.counted_loop(40, |b, _| b.work(10));
/// # let program = b.finish()?;
/// # let mut c = EventCollector::default();
/// # Cpu::new().run(&program, &mut c, RunLimits::default())?;
/// # let (events, n) = c.into_parts();
/// let mut engine = StreamEngine::new(StrPolicy::new(), 4);
/// engine.on_loop_events(&events[..events.len() / 2]);
///
/// // Capture mid-stream, restore into a fresh same-configured engine.
/// let mut enc = Enc::new();
/// engine.save_state(&mut enc);
/// let bytes = enc.into_bytes();
/// let mut restored = StreamEngine::new(StrPolicy::new(), 4);
/// restored.load_state(&mut Dec::new(&bytes))?;
///
/// // Both halves of the stream land in the same report.
/// engine.on_loop_events(&events[events.len() / 2..]);
/// engine.on_stream_end(n);
/// restored.on_loop_events(&events[events.len() / 2..]);
/// restored.on_stream_end(n);
/// assert_eq!(engine.report(), restored.report());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
impl<P: SpeculationPolicy + crate::policy::PolicySnapshot> loopspec_core::SnapshotState
    for StreamEngine<P>
{
    fn save_state(&self, out: &mut loopspec_core::snap::Enc) {
        self.core.save_state(out);
        self.ann.save_state(out);
        // Configuration echo: an oracle lane must resume against the
        // same future it was speculating from (0 = no feed).
        out.u64(self.feed.as_ref().map_or(0, OracleFeed::fingerprint));
        out.u64(self.pending.len() as u64);
        for p in &self.pending {
            write_pending(out, p);
        }
        out.u64(self.peak_buffered as u64);
        match &self.report {
            None => out.bool(false),
            Some(r) => {
                out.bool(true);
                out.u64(r.instructions);
            }
        }
    }

    fn load_state(
        &mut self,
        src: &mut loopspec_core::snap::Dec<'_>,
    ) -> Result<(), loopspec_core::snap::SnapError> {
        self.core.load_state(src)?;
        self.ann.load_state(src)?;
        if src.u64()? != self.feed.as_ref().map_or(0, OracleFeed::fingerprint) {
            return Err(loopspec_core::snap::SnapError::Mismatch {
                what: "oracle feed",
            });
        }
        let n = src.count()?;
        self.pending.clear();
        for _ in 0..n {
            self.pending.push_back(read_pending(src)?);
        }
        self.peak_buffered = src.u64()? as usize;
        // A finished engine's report is a pure function of the core
        // state and the final instruction count, so only the count is
        // stored.
        self.report = if src.bool()? {
            Some(self.core.report(src.u64()?))
        } else {
            None
        };
        Ok(())
    }
}

impl<P: SpeculationPolicy> LoopEventSink for StreamEngine<P> {
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        debug_assert!(self.report.is_none(), "event after stream end");
        self.ann.ingest(ev, &mut self.pending);
        self.note_peak();
        self.drain(false);
    }

    /// Chunked delivery: ingest the whole slice, then drain the decision
    /// queue **once**. Decisions are bit-identical to per-event delivery
    /// — a pending iteration event is released only once the frontier
    /// passes its horizon, and a spawn decision consults iteration-start
    /// positions only *below* that horizon, so the extra lookahead a
    /// chunk provides is never observable (the `chunked_equivalence`
    /// property test enforces this). Peak buffering grows by at most one
    /// chunk over the per-event path.
    fn on_loop_events(&mut self, events: &[LoopEvent]) {
        debug_assert!(self.report.is_none(), "events after stream end");
        for ev in events {
            self.ann.ingest(ev, &mut self.pending);
        }
        self.note_peak();
        self.drain(false);
    }

    fn on_stream_end(&mut self, instructions: u64) {
        if self.report.is_some() {
            return;
        }
        self.ann.close_leftovers(instructions, &mut self.pending);
        self.note_peak();
        self.drain(true);
        debug_assert!(self.pending.is_empty());
        debug_assert!(self.ann.execs.is_empty());
        self.report = Some(self.core.report(instructions));
    }
}

/// Object-safe access to a finished [`StreamEngine`] — lets callers keep
/// a heterogeneous grid of engines (different policy types) behind
/// `Box<dyn EngineSink>` and still read the reports back.
pub trait EngineSink: LoopEventSink {
    /// The report, once the stream has ended.
    fn finished_report(&self) -> Option<&EngineReport>;

    /// Peak buffered items (see [`StreamEngine::peak_buffered`]).
    fn peak_buffered(&self) -> usize;
}

impl<P: SpeculationPolicy> EngineSink for StreamEngine<P> {
    fn finished_report(&self) -> Option<&EngineReport> {
        self.report()
    }

    fn peak_buffered(&self) -> usize {
        StreamEngine::peak_buffered(self)
    }
}

/// A [`StreamEngine`] over any of the paper's history-based policies,
/// **monomorphized as an enum** instead of boxed behind
/// `dyn `[`EngineSink`].
///
/// Holding heterogeneous-policy engines as trait objects costs a
/// virtual call per delivery per engine; holding them as enum variants
/// turns that into one match and a direct call, and lets a homogeneous
/// container (`loopspec_pipeline::SinkSet<AnyStreamEngine>`) fan a
/// whole event chunk out with zero dynamic dispatch. Each engine still
/// runs its own annotation bookkeeping, though — for a whole grid of
/// configurations over one stream, [`EngineGrid`](crate::EngineGrid)
/// (which shares that work across lanes) is the faster choice and is
/// what the experiment harness uses. Policies with type parameters
/// beyond the paper's three families still go through [`EngineSink`].
///
/// ```
/// use loopspec_core::LoopEventSink;
/// use loopspec_mt::AnyStreamEngine;
/// # use loopspec_asm::ProgramBuilder;
/// # use loopspec_core::EventCollector;
/// # use loopspec_cpu::{Cpu, RunLimits};
///
/// # let mut b = ProgramBuilder::new();
/// # b.counted_loop(40, |b, _| b.work(10));
/// # let program = b.finish()?;
/// # let mut c = EventCollector::default();
/// # Cpu::new().run(&program, &mut c, RunLimits::default())?;
/// # let (events, n) = c.into_parts();
/// // Heterogeneous policies, one concrete type — no boxing.
/// let mut engines = [
///     AnyStreamEngine::idle(4),
///     AnyStreamEngine::str(4),
///     AnyStreamEngine::str_nested(2, 8),
/// ];
/// for e in &mut engines {
///     e.on_loop_events(&events);
///     e.on_stream_end(n);
/// }
/// assert!(engines.iter().all(|e| e.report().unwrap().instructions == n));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub enum AnyStreamEngine {
    /// IDLE: grab every idle TU.
    Idle(StreamEngine<IdlePolicy>),
    /// STR: stride-predicted burst sizing.
    Str(StreamEngine<StrPolicy>),
    /// STR(i): STR with a nesting limit.
    StrNested(StreamEngine<StrNestedPolicy>),
}

impl AnyStreamEngine {
    /// An IDLE-policy streaming engine with `tus` thread units.
    pub fn idle(tus: usize) -> Self {
        AnyStreamEngine::Idle(StreamEngine::new(IdlePolicy::new(), tus))
    }

    /// An STR-policy streaming engine with `tus` thread units.
    pub fn str(tus: usize) -> Self {
        AnyStreamEngine::Str(StreamEngine::new(StrPolicy::new(), tus))
    }

    /// An STR(`limit`)-policy streaming engine with `tus` thread units.
    pub fn str_nested(limit: u32, tus: usize) -> Self {
        AnyStreamEngine::StrNested(StreamEngine::new(StrNestedPolicy::new(limit), tus))
    }

    /// The report, once the stream has ended (`None` before).
    pub fn report(&self) -> Option<&EngineReport> {
        match self {
            AnyStreamEngine::Idle(e) => e.report(),
            AnyStreamEngine::Str(e) => e.report(),
            AnyStreamEngine::StrNested(e) => e.report(),
        }
    }

    /// Peak buffered items (see [`StreamEngine::peak_buffered`]).
    pub fn peak_buffered(&self) -> usize {
        match self {
            AnyStreamEngine::Idle(e) => e.peak_buffered(),
            AnyStreamEngine::Str(e) => e.peak_buffered(),
            AnyStreamEngine::StrNested(e) => e.peak_buffered(),
        }
    }
}

/// Delegates to the wrapped engine, tagging the variant so a snapshot
/// of one policy family can never restore into another.
impl loopspec_core::SnapshotState for AnyStreamEngine {
    fn save_state(&self, out: &mut loopspec_core::snap::Enc) {
        match self {
            AnyStreamEngine::Idle(e) => {
                out.u8(0);
                e.save_state(out);
            }
            AnyStreamEngine::Str(e) => {
                out.u8(1);
                e.save_state(out);
            }
            AnyStreamEngine::StrNested(e) => {
                out.u8(2);
                e.save_state(out);
            }
        }
    }

    fn load_state(
        &mut self,
        src: &mut loopspec_core::snap::Dec<'_>,
    ) -> Result<(), loopspec_core::snap::SnapError> {
        let tag = src.u8()?;
        match (tag, &mut *self) {
            (0, AnyStreamEngine::Idle(e)) => e.load_state(src),
            (1, AnyStreamEngine::Str(e)) => e.load_state(src),
            (2, AnyStreamEngine::StrNested(e)) => e.load_state(src),
            (0..=2, _) => Err(loopspec_core::snap::SnapError::Mismatch {
                what: "engine policy family",
            }),
            _ => Err(loopspec_core::snap::SnapError::Corrupt {
                what: "engine variant tag",
            }),
        }
    }
}

impl LoopEventSink for AnyStreamEngine {
    #[inline]
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        match self {
            AnyStreamEngine::Idle(e) => e.on_loop_event(ev),
            AnyStreamEngine::Str(e) => e.on_loop_event(ev),
            AnyStreamEngine::StrNested(e) => e.on_loop_event(ev),
        }
    }

    #[inline]
    fn on_loop_events(&mut self, events: &[LoopEvent]) {
        match self {
            AnyStreamEngine::Idle(e) => e.on_loop_events(events),
            AnyStreamEngine::Str(e) => e.on_loop_events(events),
            AnyStreamEngine::StrNested(e) => e.on_loop_events(events),
        }
    }

    fn on_stream_end(&mut self, instructions: u64) {
        match self {
            AnyStreamEngine::Idle(e) => e.on_stream_end(instructions),
            AnyStreamEngine::Str(e) => e.on_stream_end(instructions),
            AnyStreamEngine::StrNested(e) => e.on_stream_end(instructions),
        }
    }
}

impl EngineSink for AnyStreamEngine {
    fn finished_report(&self) -> Option<&EngineReport> {
        self.report()
    }

    fn peak_buffered(&self) -> usize {
        AnyStreamEngine::peak_buffered(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::AnnotatedTrace;
    use crate::engine::Engine;
    use crate::policy::{IdlePolicy, OraclePolicy, StrNestedPolicy, StrPolicy};
    use loopspec_asm::ProgramBuilder;
    use loopspec_core::EventCollector;
    use loopspec_cpu::{Cpu, RunLimits};

    fn events_of(build: impl FnOnce(&mut ProgramBuilder)) -> (Vec<LoopEvent>, u64) {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let p = b.finish().expect("assembles");
        let mut c = EventCollector::default();
        Cpu::new()
            .run(&p, &mut c, RunLimits::default())
            .expect("runs");
        c.into_parts()
    }

    fn stream_report<P: SpeculationPolicy>(
        events: &[LoopEvent],
        n: u64,
        policy: P,
        tus: usize,
    ) -> EngineReport {
        let mut e = StreamEngine::new(policy, tus);
        for ev in events {
            e.on_loop_event(ev);
        }
        e.on_stream_end(n);
        e.into_report()
    }

    #[test]
    fn matches_batch_engine_on_nested_loops() {
        let (events, n) = events_of(|b| {
            b.counted_loop(6, |b, _| {
                for _ in 0..3 {
                    b.counted_loop(12, |b, _| b.work(8));
                }
            });
        });
        let trace = AnnotatedTrace::build(&events, n);
        for tus in [2usize, 4, 8] {
            assert_eq!(
                stream_report(&events, n, IdlePolicy::new(), tus),
                Engine::new(&trace, IdlePolicy::new(), tus).run(),
                "IDLE@{tus}"
            );
            assert_eq!(
                stream_report(&events, n, StrPolicy::new(), tus),
                Engine::new(&trace, StrPolicy::new(), tus).run(),
                "STR@{tus}"
            );
            assert_eq!(
                stream_report(&events, n, StrNestedPolicy::new(1), tus),
                Engine::new(&trace, StrNestedPolicy::new(1), tus).run(),
                "STR(1)@{tus}"
            );
        }
    }

    #[test]
    fn matches_batch_engine_on_repeated_executions() {
        // Repeated executions warm the predictor: exercises verification
        // handoffs, stale segments and the run-ahead skip.
        let (events, n) = events_of(|b| {
            b.define_func("kernel", |b| {
                b.counted_loop(20, |b, _| b.work(10));
            });
            for _ in 0..10 {
                b.call_func("kernel");
            }
        });
        let trace = AnnotatedTrace::build(&events, n);
        let s = stream_report(&events, n, StrPolicy::new(), 8);
        let b = Engine::new(&trace, StrPolicy::new(), 8).run();
        assert_eq!(s, b);
        assert!(s.spec.verified > 0);
    }

    #[test]
    fn matches_batch_engine_on_truncated_stream() {
        // Drop the tail of the event stream so executions stay open: the
        // trailing-close path must agree too.
        let (mut events, _) = events_of(|b| {
            b.counted_loop(30, |b, _| {
                b.counted_loop(5, |b, _| b.work(6));
            });
        });
        events.truncate(events.len() / 2);
        let n = events.last().map_or(0, |e| e.pos()) + 10;
        let trace = AnnotatedTrace::build(&events, n);
        let s = stream_report(&events, n, StrPolicy::new(), 4);
        let b = Engine::new(&trace, StrPolicy::new(), 4).run();
        assert_eq!(s, b);
    }

    #[test]
    fn sequential_stream_has_tpc_one() {
        let (events, n) = events_of(|b| b.work(50));
        let r = stream_report(&events, n, StrPolicy::new(), 4);
        assert_eq!(r.cycles, n);
        assert_eq!(r.spec.threads_spawned, 0);
    }

    #[test]
    fn report_unavailable_before_stream_end() {
        let e = StreamEngine::new(StrPolicy::new(), 4);
        assert!(e.report().is_none());
    }

    #[test]
    fn buffering_stays_bounded_on_long_runs() {
        let (events, n) = events_of(|b| {
            b.counted_loop(2000, |b, _| b.work(12));
        });
        let mut e = StreamEngine::new(StrPolicy::new(), 4);
        for ev in &events {
            e.on_loop_event(ev);
        }
        e.on_stream_end(n);
        assert!(e.events_seen() > 2000);
        assert!(
            e.peak_buffered() < 64,
            "peak buffered {} should be O(window), events {}",
            e.peak_buffered(),
            e.events_seen()
        );
    }

    #[test]
    fn chunked_delivery_matches_per_event() {
        let (events, n) = events_of(|b| {
            b.counted_loop(8, |b, _| {
                b.counted_loop(15, |b, _| b.work(6));
            });
        });
        let per_event = stream_report(&events, n, StrPolicy::new(), 4);
        for chunk in [1usize, 2, 3, 7, 64, 256, events.len().max(1)] {
            let mut e = StreamEngine::new(StrPolicy::new(), 4);
            for c in events.chunks(chunk) {
                e.on_loop_events(c);
            }
            e.on_stream_end(n);
            assert_eq!(e.events_seen(), events.len() as u64);
            assert_eq!(e.into_report(), per_event, "chunk size {chunk}");
        }
    }

    #[test]
    fn any_engine_matches_generic_engine() {
        let (events, n) = events_of(|b| {
            b.counted_loop(10, |b, _| {
                b.counted_loop(9, |b, _| b.work(5));
            });
        });
        let cases: Vec<(AnyStreamEngine, EngineReport)> = vec![
            (
                AnyStreamEngine::idle(4),
                stream_report(&events, n, IdlePolicy::new(), 4),
            ),
            (
                AnyStreamEngine::str(8),
                stream_report(&events, n, StrPolicy::new(), 8),
            ),
            (
                AnyStreamEngine::str_nested(2, 4),
                stream_report(&events, n, crate::policy::StrNestedPolicy::new(2), 4),
            ),
        ];
        for (mut any, expect) in cases {
            assert!(any.report().is_none());
            any.on_loop_events(&events);
            any.on_stream_end(n);
            assert_eq!(any.report().unwrap(), &expect);
            assert_eq!(any.finished_report().unwrap(), &expect);
            assert!(EngineSink::peak_buffered(&any) > 0);
        }
    }

    #[test]
    fn rejects_oracle_with_a_typed_error() {
        // Without a feed the oracle is refused as a `Result`, not an
        // assert; the error names the two-phase escape hatch.
        let err = StreamEngine::try_new(OraclePolicy::new(), 4).unwrap_err();
        assert_eq!(err, StreamError::NeedsFeed { policy: "ORACLE" });
        assert!(err.to_string().contains("OracleFeed"), "{err}");
        assert_eq!(
            StreamEngine::try_new(StrPolicy::new(), 1).unwrap_err(),
            StreamError::BadTus { got: 1 }
        );
        assert_eq!(
            StreamEngine::unbounded_with_feed(
                StrPolicy::new(),
                crate::oracle::IterationCountLog::new().into_feed()
            )
            .unwrap_err(),
            StreamError::Unbounded { policy: "STR" }
        );
    }

    #[test]
    #[should_panic(expected = "requires future knowledge")]
    fn new_still_panics_on_oracle() {
        let _ = StreamEngine::new(OraclePolicy::new(), 4);
    }

    #[test]
    fn oracle_with_feed_matches_batch_engine() {
        use crate::oracle::IterationCountLog;
        let (events, n) = events_of(|b| {
            b.counted_loop(7, |b, _| {
                for _ in 0..2 {
                    b.counted_loop(13, |b, _| b.work(6));
                }
            });
        });
        let mut log = IterationCountLog::new();
        log.on_loop_events(&events);
        log.on_stream_end(n);
        let feed = log.into_feed();
        let trace = AnnotatedTrace::build(&events, n);

        // Bounded oracle lanes.
        for tus in [2usize, 4, 8] {
            let mut e = StreamEngine::with_feed(OraclePolicy::new(), tus, feed.clone())
                .expect("valid TU count");
            e.on_loop_events(&events);
            e.on_stream_end(n);
            assert_eq!(
                e.into_report(),
                Engine::new(&trace, OraclePolicy::new(), tus).run(),
                "ORACLE@{tus}"
            );
        }

        // The unbounded ideal machine of Figure 5.
        let mut e =
            StreamEngine::unbounded_with_feed(OraclePolicy::new(), feed).expect("oracle policy");
        e.on_loop_events(&events);
        e.on_stream_end(n);
        assert_eq!(
            e.into_report(),
            Engine::unbounded(&trace, OraclePolicy::new()).run()
        );
    }

    #[test]
    fn oracle_snapshot_refuses_a_different_feed() {
        use crate::oracle::IterationCountLog;
        use loopspec_core::snap::{Dec, Enc};
        use loopspec_core::SnapshotState;

        let (events, n) = events_of(|b| b.counted_loop(20, |b, _| b.work(8)));
        let mut log = IterationCountLog::new();
        log.on_loop_events(&events);
        log.on_stream_end(n);
        let feed = log.into_feed();

        let mut e = StreamEngine::with_feed(OraclePolicy::new(), 4, feed.clone()).unwrap();
        e.on_loop_events(&events[..events.len() / 2]);
        let mut enc = Enc::new();
        e.save_state(&mut enc);
        let bytes = enc.into_bytes();

        // Same feed: restores.
        let mut same = StreamEngine::with_feed(OraclePolicy::new(), 4, feed).unwrap();
        same.load_state(&mut Dec::new(&bytes)).expect("same feed");

        // Different feed (empty log): refused.
        let other = IterationCountLog::new().into_feed();
        let mut different = StreamEngine::with_feed(OraclePolicy::new(), 4, other).unwrap();
        assert!(matches!(
            different.load_state(&mut Dec::new(&bytes)),
            Err(loopspec_core::snap::SnapError::Mismatch {
                what: "oracle feed"
            })
        ));
    }

    #[test]
    #[should_panic(expected = "num_tus must be in 2..=4096")]
    fn rejects_one_tu() {
        let _ = StreamEngine::new(StrPolicy::new(), 1);
    }
}
