//! Shared-annotation streaming for a whole grid of engine
//! configurations.
//!
//! The experiment harness evaluates every (policy × TU-count)
//! combination over the *same* loop-event stream. Running N independent
//! [`StreamEngine`](crate::StreamEngine)s works, but each one repeats
//! identical annotation bookkeeping — execution ordinals, per-execution
//! iteration-start windows, the pending boundary-event queue — so the
//! fan-out pays that cost N times per event.
//!
//! [`EngineGrid`] factors the annotation out: one shared ingest pass per
//! event chunk builds a single queue of annotated boundary events, and
//! each engine configuration becomes a **lane** — an
//! [`EngineCore`](crate::Engine) plus a cursor into the shared queue.
//! Lanes advance independently because the speculation *timing* differs
//! per configuration: a lane may not consume an iteration event until
//! the stream frontier passes *its own*
//! `iter_start_horizon` for it. Entries are dropped once the slowest
//! lane has passed them, so retention stays O(live nesting + slowest
//! lane's run-ahead window + one chunk), exactly like the single-engine
//! driver.
//!
//! Reports are **bit-identical** to both the batch
//! [`Engine`](crate::Engine) and per-event
//! [`StreamEngine`](crate::StreamEngine) delivery: a lane consults
//! iteration-start positions only below its horizon, and every position
//! below the horizon is known by the time the gate opens — the
//! `streaming_equivalence` and `chunked_equivalence` suites enforce
//! this.

use std::collections::VecDeque;

use loopspec_core::{LoopEvent, LoopEventSink, LoopId};

use crate::engine::{EngineCore, EngineReport};
use crate::oracle::OracleFeed;
use crate::policy::{IdlePolicy, OraclePolicy, StrNestedPolicy, StrPolicy};
use crate::stream::{check_tus, Annotator, ExecAnn, Pending};

/// One engine configuration: a monomorphized decision core plus this
/// lane's read cursor into the shared annotated-event queue.
#[derive(Debug)]
struct Lane {
    core: LaneCore,
    /// Absolute sequence number of the next shared entry to consume.
    cursor: u64,
}

/// The paper's three history-based policy families plus the two-phase
/// oracle, monomorphized. An oracle lane carries its own
/// [`OracleFeed`] — the phase-1 recording it answers future-knowledge
/// questions from.
#[derive(Debug)]
enum LaneCore {
    Idle(EngineCore<IdlePolicy>),
    Str(EngineCore<StrPolicy>),
    StrNested(EngineCore<StrNestedPolicy>),
    Oracle(EngineCore<OraclePolicy>, OracleFeed),
}

impl LaneCore {
    fn exec_start(&mut self, exec: u32) {
        match self {
            LaneCore::Idle(c) => c.exec_start(exec),
            LaneCore::Str(c) => c.exec_start(exec),
            LaneCore::StrNested(c) => c.exec_start(exec),
            LaneCore::Oracle(c, _) => c.exec_start(exec),
        }
    }

    #[inline]
    fn iter_start_horizon(&self, exec: u32, iter: u32, pos: u64) -> u64 {
        match self {
            LaneCore::Idle(c) => c.iter_start_horizon(exec, iter, pos),
            LaneCore::Str(c) => c.iter_start_horizon(exec, iter, pos),
            LaneCore::StrNested(c) => c.iter_start_horizon(exec, iter, pos),
            LaneCore::Oracle(c, _) => c.iter_start_horizon(exec, iter, pos),
        }
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn iter_start(
        &mut self,
        exec: u32,
        loop_id: LoopId,
        iter: u32,
        pos: u64,
        iter_pos: &dyn Fn(u32) -> Option<u64>,
    ) {
        match self {
            LaneCore::Idle(c) => c.iter_start(exec, loop_id, iter, pos, iter_pos, 0),
            LaneCore::Str(c) => c.iter_start(exec, loop_id, iter, pos, iter_pos, 0),
            LaneCore::StrNested(c) => c.iter_start(exec, loop_id, iter, pos, iter_pos, 0),
            LaneCore::Oracle(c, feed) => {
                let remaining = feed.remaining_after(exec, iter);
                c.iter_start(exec, loop_id, iter, pos, iter_pos, remaining);
            }
        }
    }

    fn exec_end(&mut self, exec: u32, loop_id: LoopId, pos: u64, closed: bool, iters: u32) {
        match self {
            LaneCore::Idle(c) => c.exec_end(exec, loop_id, pos, closed, iters),
            LaneCore::Str(c) => c.exec_end(exec, loop_id, pos, closed, iters),
            LaneCore::StrNested(c) => c.exec_end(exec, loop_id, pos, closed, iters),
            LaneCore::Oracle(c, _) => c.exec_end(exec, loop_id, pos, closed, iters),
        }
    }

    fn report(&self, instructions: u64) -> EngineReport {
        match self {
            LaneCore::Idle(c) => c.report(instructions),
            LaneCore::Str(c) => c.report(instructions),
            LaneCore::StrNested(c) => c.report(instructions),
            LaneCore::Oracle(c, _) => c.report(instructions),
        }
    }

    /// Policy-family tag for the snapshot's configuration echo.
    fn family_tag(&self) -> u8 {
        match self {
            LaneCore::Idle(_) => 0,
            LaneCore::Str(_) => 1,
            LaneCore::StrNested(_) => 2,
            LaneCore::Oracle(..) => 3,
        }
    }

    fn save_state(&self, out: &mut loopspec_core::snap::Enc) {
        match self {
            LaneCore::Idle(c) => c.save_state(out),
            LaneCore::Str(c) => c.save_state(out),
            LaneCore::StrNested(c) => c.save_state(out),
            LaneCore::Oracle(c, feed) => {
                // Configuration echo: an oracle lane must resume
                // against the same future it was speculating from.
                out.u64(feed.fingerprint());
                c.save_state(out);
            }
        }
    }

    fn load_state(
        &mut self,
        src: &mut loopspec_core::snap::Dec<'_>,
    ) -> Result<(), loopspec_core::snap::SnapError> {
        match self {
            LaneCore::Idle(c) => c.load_state(src),
            LaneCore::Str(c) => c.load_state(src),
            LaneCore::StrNested(c) => c.load_state(src),
            LaneCore::Oracle(c, feed) => {
                if src.u64()? != feed.fingerprint() {
                    return Err(loopspec_core::snap::SnapError::Mismatch {
                        what: "oracle feed",
                    });
                }
                c.load_state(src)
            }
        }
    }
}

/// A set of streaming speculation engines sharing one annotation pass —
/// the experiment grid as a *single* [`LoopEventSink`].
///
/// Add lanes with [`EngineGrid::push_idle`], [`EngineGrid::push_str`]
/// and [`EngineGrid::push_str_nested`] (each returns the lane's index),
/// register the grid in a `loopspec_pipeline::Session` (or feed it
/// events directly), and read the per-lane reports after the stream
/// ends.
///
/// ```
/// use loopspec_core::LoopEventSink;
/// use loopspec_mt::EngineGrid;
/// # use loopspec_asm::ProgramBuilder;
/// # use loopspec_core::EventCollector;
/// # use loopspec_cpu::{Cpu, RunLimits};
///
/// # let mut b = ProgramBuilder::new();
/// # b.counted_loop(40, |b, _| b.work(10));
/// # let program = b.finish()?;
/// # let mut c = EventCollector::default();
/// # Cpu::new().run(&program, &mut c, RunLimits::default())?;
/// # let (events, n) = c.into_parts();
/// let mut grid = EngineGrid::new();
/// let str4 = grid.push_str(4);
/// let idle8 = grid.push_idle(8);
/// grid.on_loop_events(&events);
/// grid.on_stream_end(n);
/// assert!(grid.report(str4).unwrap().tpc() > 1.0);
/// assert_eq!(grid.report(idle8).unwrap().instructions, n);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct EngineGrid {
    lanes: Vec<Lane>,
    /// The shared annotation rules — one copy for all lanes (see
    /// [`Annotator`]).
    ann: Annotator,
    /// Annotated boundary events not yet consumed by every lane.
    /// `shared[0]` has absolute sequence number `base_seq`.
    shared: VecDeque<Pending>,
    base_seq: u64,
    peak_buffered: usize,
    reports: Option<Vec<EngineReport>>,
}

impl EngineGrid {
    /// An empty grid.
    pub fn new() -> Self {
        EngineGrid::default()
    }

    fn push_lane(&mut self, core: LaneCore) -> usize {
        assert!(
            self.ann.events_seen == 0 && self.reports.is_none(),
            "lanes must be added before the stream starts"
        );
        self.lanes.push(Lane { core, cursor: 0 });
        self.lanes.len() - 1
    }

    /// Adds an IDLE-policy lane with `tus` thread units; returns its
    /// lane index.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= tus <= 4096`, or if events were already
    /// delivered.
    pub fn push_idle(&mut self, tus: usize) -> usize {
        check_tus(tus);
        self.push_lane(LaneCore::Idle(EngineCore::new(
            IdlePolicy::new(),
            tus as u64,
            Some(tus),
        )))
    }

    /// Adds an STR-policy lane with `tus` thread units; returns its lane
    /// index.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= tus <= 4096`, or if events were already
    /// delivered.
    pub fn push_str(&mut self, tus: usize) -> usize {
        check_tus(tus);
        self.push_lane(LaneCore::Str(EngineCore::new(
            StrPolicy::new(),
            tus as u64,
            Some(tus),
        )))
    }

    /// Adds an STR(`limit`)-policy lane with `tus` thread units; returns
    /// its lane index.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= tus <= 4096`, or if events were already
    /// delivered.
    pub fn push_str_nested(&mut self, limit: u32, tus: usize) -> usize {
        check_tus(tus);
        self.push_lane(LaneCore::StrNested(EngineCore::new(
            StrNestedPolicy::new(limit),
            tus as u64,
            Some(tus),
        )))
    }

    /// Adds a two-phase-oracle lane with `tus` thread units, answering
    /// future-knowledge questions from `feed` (a phase-1
    /// [`IterationCountLog`](crate::IterationCountLog) recording of the
    /// same stream); returns its lane index.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= tus <= 4096`, or if events were already
    /// delivered.
    pub fn push_oracle(&mut self, tus: usize, feed: OracleFeed) -> usize {
        check_tus(tus);
        self.push_lane(LaneCore::Oracle(
            EngineCore::new(OraclePolicy::new(), tus as u64, Some(tus)),
            feed,
        ))
    }

    /// Adds a two-phase-oracle lane with an **unbounded** TU pool —
    /// the ideal machine of the paper's Figure 5 — answering
    /// future-knowledge questions from `feed`; returns its lane index.
    ///
    /// # Panics
    ///
    /// Panics if events were already delivered.
    pub fn push_oracle_unbounded(&mut self, feed: OracleFeed) -> usize {
        self.push_lane(LaneCore::Oracle(
            EngineCore::new(OraclePolicy::new(), u64::MAX, None),
            feed,
        ))
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// `true` when the grid has no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// The report of lane `lane`, once the stream has ended (`None`
    /// before, or for an out-of-range index).
    pub fn report(&self, lane: usize) -> Option<&EngineReport> {
        self.reports.as_ref()?.get(lane)
    }

    /// All lane reports in lane order, once the stream has ended.
    pub fn reports(&self) -> Option<&[EngineReport]> {
        self.reports.as_deref()
    }

    /// Total loop events observed.
    pub fn events_seen(&self) -> u64 {
        self.ann.events_seen
    }

    /// Peak number of simultaneously buffered items (shared queue
    /// entries plus retained iteration starts plus live execution
    /// annotations) — O(live nesting + slowest lane's run-ahead window
    /// + one chunk), never O(trace).
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Advances every lane as far as its horizon allows, then drops the
    /// shared prefix every lane has consumed.
    fn advance_lanes(&mut self, finished: bool) {
        let base_seq = self.base_seq;
        let frontier = self.ann.frontier;
        // Straighten both ring buffers once per chunk so the 20-lane
        // pass reads plain slices (no wrap check per entry per lane).
        let shared: &[Pending] = self.shared.make_contiguous();
        let (exec_base, exec_slots) = self.ann.execs.contiguous();
        let ann_of = |exec: u32| -> &ExecAnn {
            exec_slots[(exec - exec_base) as usize]
                .as_ref()
                .expect("pending entry has annotation")
        };
        for lane in &mut self.lanes {
            while let Some(&entry) = shared.get((lane.cursor - base_seq) as usize) {
                match entry {
                    Pending::Start { exec } => lane.core.exec_start(exec),
                    Pending::End {
                        exec,
                        pos,
                        closed,
                        iterations,
                    } => {
                        let loop_id = ann_of(exec).loop_id;
                        lane.core.exec_end(exec, loop_id, pos, closed, iterations);
                    }
                    Pending::Iter { exec, iter, pos } => {
                        let ann = ann_of(exec);
                        // Same gate as the single-engine driver: the
                        // spawn decision may consult iteration starts up
                        // to the horizon; deliver only once every event
                        // below it is known.
                        if !(finished || ann.ended) {
                            let horizon = lane.core.iter_start_horizon(exec, iter, pos);
                            if frontier < horizon {
                                break;
                            }
                        }
                        // The shared window is pruned at the *slowest*
                        // lane, so it can still hold starts at or before
                        // this iteration; spawn lookups only ask about
                        // j > iter, answered in O(1) because detected
                        // iteration indices are consecutive.
                        let iters = &ann.iters;
                        let lookup = move |j: u32| -> Option<u64> {
                            let &(front, _) = iters.front()?;
                            let idx = j.checked_sub(front)? as usize;
                            iters.get(idx).map(|&(_, p)| p)
                        };
                        lane.core.iter_start(exec, ann.loop_id, iter, pos, &lookup);
                    }
                }
                lane.cursor += 1;
            }
        }

        // Compact: drop entries every lane has passed, pruning the
        // per-execution iteration windows as their consumers disappear.
        let min_cursor = self
            .lanes
            .iter()
            .map(|l| l.cursor)
            .min()
            .unwrap_or(self.base_seq + self.shared.len() as u64);
        while self.base_seq < min_cursor {
            let entry = self.shared.pop_front().expect("cursors within queue");
            self.base_seq += 1;
            match entry {
                Pending::Start { .. } => {}
                Pending::Iter { exec, iter, .. } => {
                    let ann = self.ann.execs.get_mut(exec).expect("iter before its end");
                    while ann.iters.front().is_some_and(|&(j, _)| j <= iter) {
                        ann.iters.pop_front();
                        self.ann.buffered_iters -= 1;
                    }
                }
                Pending::End { exec, .. } => {
                    let ann = self.ann.execs.remove(exec).expect("end has annotation");
                    self.ann.buffered_iters -= ann.iters.len();
                }
            }
        }
    }

    fn note_peak(&mut self) {
        let now = self.shared.len() + self.ann.buffered_iters + self.ann.execs.len();
        if now > self.peak_buffered {
            self.peak_buffered = now;
        }
    }
}

/// Serializes the whole grid: the shared annotation state, the shared
/// annotated-event queue, and each lane's read cursor plus decision-core
/// state. The lane list itself (policy families, TU counts) is
/// configuration: the loader verifies that the receiving grid was built
/// with the same lanes, in the same order, and refuses mismatches
/// instead of silently relabelling reports. A finished grid stores only
/// the final instruction count — lane reports are recomputed from the
/// restored cores.
impl loopspec_core::SnapshotState for EngineGrid {
    fn save_state(&self, out: &mut loopspec_core::snap::Enc) {
        out.u64(self.lanes.len() as u64);
        for lane in &self.lanes {
            out.u8(lane.core.family_tag());
            out.u64(lane.cursor);
            lane.core.save_state(out);
        }
        self.ann.save_state(out);
        out.u64(self.shared.len() as u64);
        for p in &self.shared {
            crate::stream::write_pending(out, p);
        }
        out.u64(self.base_seq);
        out.u64(self.peak_buffered as u64);
        match &self.reports {
            None => out.bool(false),
            Some(reports) => {
                out.bool(true);
                out.u64(reports.first().map_or(0, |r| r.instructions));
            }
        }
    }

    fn load_state(
        &mut self,
        src: &mut loopspec_core::snap::Dec<'_>,
    ) -> Result<(), loopspec_core::snap::SnapError> {
        use loopspec_core::snap::SnapError;
        if src.count()? != self.lanes.len() {
            return Err(SnapError::Mismatch { what: "lane count" });
        }
        for lane in &mut self.lanes {
            if src.u8()? != lane.core.family_tag() {
                return Err(SnapError::Mismatch {
                    what: "lane policy family",
                });
            }
            lane.cursor = src.u64()?;
            lane.core.load_state(src)?;
        }
        self.ann.load_state(src)?;
        let n = src.count()?;
        self.shared.clear();
        for _ in 0..n {
            self.shared.push_back(crate::stream::read_pending(src)?);
        }
        self.base_seq = src.u64()?;
        self.peak_buffered = src.u64()? as usize;
        self.reports = if src.bool()? {
            let instructions = src.u64()?;
            Some(
                self.lanes
                    .iter()
                    .map(|l| l.core.report(instructions))
                    .collect(),
            )
        } else {
            None
        };
        Ok(())
    }
}

impl LoopEventSink for EngineGrid {
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        debug_assert!(self.reports.is_none(), "event after stream end");
        self.ann.ingest(ev, &mut self.shared);
        self.note_peak();
        self.advance_lanes(false);
    }

    fn on_loop_events(&mut self, events: &[LoopEvent]) {
        debug_assert!(self.reports.is_none(), "events after stream end");
        for ev in events {
            self.ann.ingest(ev, &mut self.shared);
        }
        self.note_peak();
        self.advance_lanes(false);
    }

    fn on_stream_end(&mut self, instructions: u64) {
        if self.reports.is_some() {
            return;
        }
        self.ann.close_leftovers(instructions, &mut self.shared);
        self.note_peak();
        self.advance_lanes(true);
        debug_assert!(self.shared.is_empty());
        debug_assert!(self.ann.execs.is_empty());
        self.reports = Some(
            self.lanes
                .iter()
                .map(|l| l.core.report(instructions))
                .collect(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::AnnotatedTrace;
    use crate::engine::Engine;
    use crate::policy::{IdlePolicy, StrNestedPolicy, StrPolicy};
    use loopspec_core::EventCollector;
    use loopspec_cpu::{Cpu, RunLimits};

    fn events_of(build: impl FnOnce(&mut loopspec_asm::ProgramBuilder)) -> (Vec<LoopEvent>, u64) {
        let mut b = loopspec_asm::ProgramBuilder::new();
        build(&mut b);
        let p = b.finish().expect("assembles");
        let mut c = EventCollector::default();
        Cpu::new()
            .run(&p, &mut c, RunLimits::default())
            .expect("runs");
        c.into_parts()
    }

    fn full_grid() -> (EngineGrid, Vec<&'static str>) {
        let mut grid = EngineGrid::new();
        let mut labels = Vec::new();
        for tus in [2usize, 4, 8, 16] {
            grid.push_idle(tus);
            labels.push("IDLE");
            grid.push_str(tus);
            labels.push("STR");
            for i in 1..=3 {
                grid.push_str_nested(i, tus);
                labels.push("STR(i)");
            }
        }
        (grid, labels)
    }

    fn batch_for(trace: &AnnotatedTrace, label: &str, lane: usize) -> EngineReport {
        let tus = [2usize, 4, 8, 16][lane / 5];
        match label {
            "IDLE" => Engine::new(trace, IdlePolicy::new(), tus).run(),
            "STR" => Engine::new(trace, StrPolicy::new(), tus).run(),
            _ => {
                let i = (lane % 5 - 1) as u32;
                Engine::new(trace, StrNestedPolicy::new(i), tus).run()
            }
        }
    }

    #[test]
    fn grid_matches_batch_on_every_lane() {
        let (events, n) = events_of(|b| {
            b.counted_loop(6, |b, _| {
                for _ in 0..3 {
                    b.counted_loop(12, |b, _| b.work(8));
                }
            });
        });
        let trace = AnnotatedTrace::build(&events, n);
        for chunk in [1usize, 7, 256, events.len()] {
            let (mut grid, labels) = full_grid();
            assert_eq!(grid.len(), 20);
            for c in events.chunks(chunk) {
                grid.on_loop_events(c);
            }
            grid.on_stream_end(n);
            assert_eq!(grid.events_seen(), events.len() as u64);
            for (lane, label) in labels.iter().enumerate() {
                assert_eq!(
                    grid.report(lane).unwrap(),
                    &batch_for(&trace, label, lane),
                    "lane {lane} ({label}) @ chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn grid_matches_stream_engine_on_truncated_stream() {
        let (mut events, _) = events_of(|b| {
            b.counted_loop(30, |b, _| {
                b.counted_loop(5, |b, _| b.work(6));
            });
        });
        events.truncate(events.len() / 2);
        let n = events.last().map_or(0, |e| e.pos()) + 10;
        let trace = AnnotatedTrace::build(&events, n);

        let mut grid = EngineGrid::new();
        let lane = grid.push_str(4);
        grid.on_loop_events(&events);
        grid.on_stream_end(n);
        assert_eq!(
            grid.report(lane).unwrap(),
            &Engine::new(&trace, StrPolicy::new(), 4).run()
        );
    }

    #[test]
    fn grid_buffering_stays_bounded() {
        let (events, n) = events_of(|b| {
            b.counted_loop(2000, |b, _| b.work(12));
        });
        let (mut grid, _) = full_grid();
        for c in events.chunks(256) {
            grid.on_loop_events(c);
        }
        grid.on_stream_end(n);
        assert!(grid.events_seen() > 2000);
        assert!(
            grid.peak_buffered() < 1024,
            "peak {} should be O(window + chunk), events {}",
            grid.peak_buffered(),
            grid.events_seen()
        );
    }

    #[test]
    fn empty_grid_is_fine() {
        let (events, n) = events_of(|b| b.counted_loop(5, |b, _| b.work(3)));
        let mut grid = EngineGrid::new();
        assert!(grid.is_empty());
        grid.on_loop_events(&events);
        grid.on_stream_end(n);
        assert_eq!(grid.reports(), Some(&[][..]));
        assert!(grid.report(0).is_none());
    }

    #[test]
    fn oracle_lanes_match_batch_oracle() {
        use crate::oracle::IterationCountLog;
        use crate::policy::OraclePolicy;

        let (events, n) = events_of(|b| {
            b.counted_loop(8, |b, _| {
                for _ in 0..2 {
                    b.counted_loop(10, |b, _| b.work(7));
                }
            });
        });
        // Phase 1: record the counts.
        let mut log = IterationCountLog::new();
        log.on_loop_events(&events);
        log.on_stream_end(n);
        let feed = log.into_feed();
        let trace = AnnotatedTrace::build(&events, n);

        // Phase 2: oracle lanes beside a history lane in one grid.
        for chunk in [1usize, 7, 256] {
            let mut grid = EngineGrid::new();
            let o4 = grid.push_oracle(4, feed.clone());
            let ideal = grid.push_oracle_unbounded(feed.clone());
            let str4 = grid.push_str(4);
            for c in events.chunks(chunk) {
                grid.on_loop_events(c);
            }
            grid.on_stream_end(n);
            assert_eq!(
                grid.report(o4).unwrap(),
                &Engine::new(&trace, OraclePolicy::new(), 4).run(),
                "ORACLE@4 chunk {chunk}"
            );
            assert_eq!(
                grid.report(ideal).unwrap(),
                &Engine::unbounded(&trace, OraclePolicy::new()).run(),
                "ideal chunk {chunk}"
            );
            assert_eq!(
                grid.report(str4).unwrap(),
                &Engine::new(&trace, StrPolicy::new(), 4).run(),
                "STR@4 beside oracle lanes, chunk {chunk}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "num_tus must be in 2..=4096")]
    fn rejects_one_tu() {
        let _ = EngineGrid::new().push_str(1);
    }

    #[test]
    #[should_panic(expected = "before the stream starts")]
    fn rejects_late_lanes() {
        let (events, _) = events_of(|b| b.counted_loop(5, |b, _| b.work(3)));
        let mut grid = EngineGrid::new();
        grid.push_str(4);
        grid.on_loop_events(&events);
        grid.push_idle(4);
    }
}
