//! Speculation policies: how many future iterations to launch (paper
//! §3.1.2).

use loopspec_core::snap::{Dec, Enc, SnapError};
use loopspec_core::LoopId;

use crate::{IterPrediction, IterPredictor};

/// Checkpointable policy state.
///
/// The paper's base policies (IDLE, STR, STR(i), the oracle) are pure
/// functions of the [`SpecContext`] and carry no mutable state — their
/// implementations write and read nothing. Policies that *learn* from
/// [`SpeculationPolicy::on_thread_outcome`] feedback (the
/// [`SuitabilityFilter`]) serialize their history here, so a streaming
/// engine restored from a snapshot suppresses exactly the loops it
/// would have suppressed uninterrupted.
///
/// Policy *configuration* (the STR(i) limit, filter thresholds) is not
/// serialized: the owner reconstructs the policy and the engine's
/// configuration echo catches mismatches.
pub trait PolicySnapshot {
    /// Appends the policy's mutable state to `out`.
    fn save_policy_state(&self, out: &mut Enc);

    /// Restores state written by
    /// [`save_policy_state`](PolicySnapshot::save_policy_state).
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated or corrupt input.
    fn load_policy_state(&mut self, src: &mut Dec<'_>) -> Result<(), SnapError>;
}

macro_rules! impl_stateless_policy_snapshot {
    ($($T:ty),+) => {
        $(impl PolicySnapshot for $T {
            fn save_policy_state(&self, _out: &mut Enc) {}

            fn load_policy_state(&mut self, _src: &mut Dec<'_>) -> Result<(), SnapError> {
                Ok(())
            }
        })+
    };
}

impl_stateless_policy_snapshot!(IdlePolicy, StrPolicy, StrNestedPolicy, OraclePolicy);

impl<P: PolicySnapshot> PolicySnapshot for SuitabilityFilter<P> {
    fn save_policy_state(&self, out: &mut Enc) {
        let mut stats: Vec<(LoopId, u32, u32)> =
            self.stats.iter().map(|(&l, &(c, w))| (l, c, w)).collect();
        stats.sort_unstable();
        out.u64(stats.len() as u64);
        for (l, c, w) in stats {
            out.u32(l.0.index());
            out.u32(c);
            out.u32(w);
        }
        self.inner.save_policy_state(out);
    }

    fn load_policy_state(&mut self, src: &mut Dec<'_>) -> Result<(), SnapError> {
        let n = src.count()?;
        self.stats.clear();
        for _ in 0..n {
            let l = LoopId(loopspec_isa::Addr::new(src.u32()?));
            let c = src.u32()?;
            let w = src.u32()?;
            self.stats.insert(l, (c, w));
        }
        self.inner.load_policy_state(src)
    }
}

/// Everything a policy may consult when an iteration starts in the
/// non-speculative thread.
#[derive(Debug, Clone, Copy)]
pub struct SpecContext<'a> {
    /// The loop whose iteration just started.
    pub loop_id: LoopId,
    /// The iteration index that just started (≥ 2).
    pub current_iter: u32,
    /// Idle thread units available right now.
    pub idle_tus: u64,
    /// Future iterations of this execution that already hold live
    /// speculative threads.
    pub already_speculated: u32,
    /// The shared iteration-count predictor (the LET).
    pub predictor: &'a IterPredictor,
    /// Ground truth: actual iterations remaining after the current one,
    /// supplied by whichever future-knowledge channel the driver has —
    /// the batch engine's [`AnnotatedTrace`](crate::AnnotatedTrace), or
    /// a streaming driver's [`OracleFeed`](crate::OracleFeed) recorded
    /// by a phase-1 [`IterationCountLog`](crate::IterationCountLog)
    /// pass. Only the oracle may look at this; drivers with neither
    /// channel pass 0 and refuse future-knowledge policies.
    pub remaining_from_feed: u32,
}

/// A thread-count speculation policy.
///
/// Returns how many *new* speculative threads to launch for consecutive
/// future iterations of `ctx.loop_id`, given `ctx.idle_tus` free TUs. The
/// engine clamps nothing: returning more than `idle_tus` is a policy bug
/// (debug-asserted by the engine).
pub trait SpeculationPolicy {
    /// Display name (used in reports).
    fn name(&self) -> &'static str;

    /// Number of new threads to spawn.
    fn threads_to_spawn(&self, ctx: &SpecContext<'_>) -> u64;

    /// `Some(i)` enables the STR(i) rule: at most `i` non-speculated loop
    /// executions may be nested inside a speculated loop before its
    /// speculative threads are squashed to free TUs for the inner loops.
    fn max_nonspec_nested(&self) -> Option<u32> {
        None
    }

    /// Whether the policy is safe to run with an unbounded TU pool (only
    /// oracle-style policies that never over-speculate are).
    fn supports_unbounded_tus(&self) -> bool {
        false
    }

    /// Whether the policy consults ground truth about the future
    /// ([`SpecContext::remaining_from_feed`]). Such policies run on the
    /// batch [`Engine`](crate::Engine) (which has the whole trace) or on
    /// a streaming driver constructed with an
    /// [`OracleFeed`](crate::OracleFeed) — e.g.
    /// [`StreamEngine::with_feed`](crate::StreamEngine::with_feed); a
    /// feed-less [`StreamEngine`](crate::StreamEngine) refuses them with
    /// [`StreamError::NeedsFeed`](crate::StreamError::NeedsFeed).
    fn requires_future_knowledge(&self) -> bool {
        false
    }

    /// Feedback from the engine: a thread speculated for `loop_id`
    /// resolved (`correct = false` only for control misspeculation, i.e.
    /// the iteration never existed). Default: ignored.
    fn on_thread_outcome(&mut self, _loop_id: LoopId, _correct: bool) {}
}

/// **IDLE**: "the number of speculated threads is equal to the number of
/// idle TUs existing in that moment."
#[derive(Debug, Clone, Copy, Default)]
pub struct IdlePolicy;

impl IdlePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        IdlePolicy
    }
}

impl SpeculationPolicy for IdlePolicy {
    fn name(&self) -> &'static str {
        "IDLE"
    }

    fn threads_to_spawn(&self, ctx: &SpecContext<'_>) -> u64 {
        ctx.idle_tus
    }
}

/// Shared STR sizing: min(idle, predicted remaining), falling back to the
/// last count, then to "all idle TUs".
fn str_spawn(ctx: &SpecContext<'_>) -> u64 {
    let committed_through = ctx.current_iter as u64 + ctx.already_speculated as u64;
    match ctx.predictor.predict(ctx.loop_id) {
        IterPrediction::Stride { total } | IterPrediction::LastCount { total } => {
            let remaining = (total as u64).saturating_sub(committed_through);
            remaining.min(ctx.idle_tus)
        }
        IterPrediction::Unknown => ctx.idle_tus,
    }
}

/// **STR**: size the burst with the stride-predicted remaining iteration
/// count when the stride is reliable, else with the last execution's
/// count, else grab all idle TUs.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrPolicy;

impl StrPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        StrPolicy
    }
}

impl SpeculationPolicy for StrPolicy {
    fn name(&self) -> &'static str {
        "STR"
    }

    fn threads_to_spawn(&self, ctx: &SpecContext<'_>) -> u64 {
        str_spawn(ctx)
    }
}

/// **STR(i)**: STR sizing plus the nesting rule — when more than `i`
/// non-speculated loops pile up inside a speculated loop, the outermost
/// speculated loop's threads are squashed so inner loops can speculate.
#[derive(Debug, Clone, Copy)]
pub struct StrNestedPolicy {
    i: u32,
}

impl StrNestedPolicy {
    /// Creates STR(i).
    pub fn new(i: u32) -> Self {
        StrNestedPolicy { i }
    }

    /// The nesting limit `i`.
    pub fn limit(&self) -> u32 {
        self.i
    }
}

impl SpeculationPolicy for StrNestedPolicy {
    fn name(&self) -> &'static str {
        match self.i {
            1 => "STR(1)",
            2 => "STR(2)",
            3 => "STR(3)",
            _ => "STR(i)",
        }
    }

    fn threads_to_spawn(&self, ctx: &SpecContext<'_>) -> u64 {
        str_spawn(ctx)
    }

    fn max_nonspec_nested(&self) -> Option<u32> {
        Some(self.i)
    }
}

/// **Oracle**: spawns exactly the actual remaining iterations — no
/// misspeculation, no under-speculation. Used for the infinite-TU
/// potential study (the paper's Figure 5 "mechanism that speculates when
/// the non-speculative thread detects a loop execution" on an ideal
/// machine).
#[derive(Debug, Clone, Copy, Default)]
pub struct OraclePolicy;

impl OraclePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        OraclePolicy
    }
}

impl SpeculationPolicy for OraclePolicy {
    fn name(&self) -> &'static str {
        "ORACLE"
    }

    fn threads_to_spawn(&self, ctx: &SpecContext<'_>) -> u64 {
        (ctx.remaining_from_feed as u64)
            .saturating_sub(ctx.already_speculated as u64)
            .min(ctx.idle_tus)
    }

    fn supports_unbounded_tus(&self) -> bool {
        true
    }

    fn requires_future_knowledge(&self) -> bool {
        true
    }
}

/// The §2.3.2 extension: a table of loops "not suitable for speculation".
///
/// "It may be convenient to disable the recognition of some loops by
/// introducing a new table containing those potential loops that are not
/// suitable for speculation … those loops with a poor prediction rate may
/// be good candidates." This wrapper tracks per-loop misspeculation rates
/// and suppresses speculation for loops whose observed rate exceeds a
/// threshold, delegating everything else to the inner policy.
///
/// ```
/// use loopspec_mt::{SuitabilityFilter, StrPolicy, SpeculationPolicy};
/// use loopspec_core::LoopId;
/// use loopspec_isa::Addr;
///
/// let mut p = SuitabilityFilter::new(StrPolicy::new(), 8, 0.5);
/// let l = LoopId(Addr::new(1));
/// for _ in 0..8 {
///     p.on_thread_outcome(l, false); // chronic misspeculation
/// }
/// assert!(p.is_suppressed(l));
/// ```
#[derive(Debug, Clone)]
pub struct SuitabilityFilter<P> {
    inner: P,
    stats: std::collections::HashMap<LoopId, (u32, u32)>, // (correct, wrong)
    min_samples: u32,
    max_wrong_rate: f64,
}

impl<P> SuitabilityFilter<P> {
    /// Wraps `inner`; a loop is suppressed once it has `min_samples`
    /// resolved threads with a misspeculation rate above
    /// `max_wrong_rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < max_wrong_rate < 1.0` and `min_samples > 0`.
    pub fn new(inner: P, min_samples: u32, max_wrong_rate: f64) -> Self {
        assert!(min_samples > 0, "min_samples must be positive");
        assert!(
            (0.0..1.0).contains(&max_wrong_rate) && max_wrong_rate > 0.0,
            "max_wrong_rate must be in (0, 1)"
        );
        SuitabilityFilter {
            inner,
            stats: std::collections::HashMap::new(),
            min_samples,
            max_wrong_rate,
        }
    }

    /// Whether `loop_id` is currently on the not-suitable list.
    pub fn is_suppressed(&self, loop_id: LoopId) -> bool {
        match self.stats.get(&loop_id) {
            Some(&(correct, wrong)) if correct + wrong >= self.min_samples => {
                wrong as f64 / (correct + wrong) as f64 > self.max_wrong_rate
            }
            _ => false,
        }
    }

    /// Number of loops currently suppressed.
    pub fn suppressed_count(&self) -> usize {
        self.stats
            .keys()
            .filter(|&&l| self.is_suppressed(l))
            .count()
    }
}

impl<P: SpeculationPolicy> SpeculationPolicy for SuitabilityFilter<P> {
    fn name(&self) -> &'static str {
        "STR+FILT"
    }

    fn threads_to_spawn(&self, ctx: &SpecContext<'_>) -> u64 {
        if self.is_suppressed(ctx.loop_id) {
            0
        } else {
            self.inner.threads_to_spawn(ctx)
        }
    }

    fn max_nonspec_nested(&self) -> Option<u32> {
        self.inner.max_nonspec_nested()
    }

    fn requires_future_knowledge(&self) -> bool {
        self.inner.requires_future_knowledge()
    }

    fn on_thread_outcome(&mut self, loop_id: LoopId, correct: bool) {
        let e = self.stats.entry(loop_id).or_insert((0, 0));
        if correct {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
        self.inner.on_thread_outcome(loop_id, correct);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_isa::Addr;

    fn lid(n: u32) -> LoopId {
        LoopId(Addr::new(n))
    }

    fn ctx<'a>(
        predictor: &'a IterPredictor,
        current_iter: u32,
        idle: u64,
        already: u32,
        remaining_from_feed: u32,
    ) -> SpecContext<'a> {
        SpecContext {
            loop_id: lid(1),
            current_iter,
            idle_tus: idle,
            already_speculated: already,
            predictor,
            remaining_from_feed,
        }
    }

    #[test]
    fn idle_takes_everything() {
        let p = IterPredictor::new();
        assert_eq!(
            IdlePolicy::new().threads_to_spawn(&ctx(&p, 2, 3, 0, 100)),
            3
        );
        assert_eq!(
            IdlePolicy::new().threads_to_spawn(&ctx(&p, 2, 0, 0, 100)),
            0
        );
    }

    #[test]
    fn str_unknown_behaves_like_idle() {
        let p = IterPredictor::new();
        assert_eq!(StrPolicy::new().threads_to_spawn(&ctx(&p, 2, 3, 0, 9)), 3);
    }

    #[test]
    fn str_caps_at_predicted_remaining() {
        let mut p = IterPredictor::new();
        for _ in 0..3 {
            p.record_execution(lid(1), 10); // reliable total = 10
        }
        // current iter 8, so 2 remaining; 5 idle.
        assert_eq!(StrPolicy::new().threads_to_spawn(&ctx(&p, 8, 5, 0, 2)), 2);
        // already 1 speculated: only 1 more.
        assert_eq!(StrPolicy::new().threads_to_spawn(&ctx(&p, 8, 5, 1, 2)), 1);
        // past the predicted end: nothing.
        assert_eq!(StrPolicy::new().threads_to_spawn(&ctx(&p, 11, 5, 0, 0)), 0);
    }

    #[test]
    fn str_uses_last_count_when_unreliable() {
        let mut p = IterPredictor::new();
        p.record_execution(lid(1), 6); // one observation: LastCount
        assert_eq!(StrPolicy::new().threads_to_spawn(&ctx(&p, 2, 10, 0, 4)), 4);
    }

    #[test]
    fn str_nested_carries_its_limit() {
        let p3 = StrNestedPolicy::new(3);
        assert_eq!(p3.max_nonspec_nested(), Some(3));
        assert_eq!(p3.name(), "STR(3)");
        assert_eq!(p3.limit(), 3);
        assert_eq!(StrPolicy::new().max_nonspec_nested(), None);
    }

    #[test]
    fn suitability_filter_suppresses_bad_loops_only() {
        let mut f = SuitabilityFilter::new(StrPolicy::new(), 4, 0.5);
        // Loop 1: mostly wrong; loop 2: mostly right.
        for _ in 0..6 {
            f.on_thread_outcome(lid(1), false);
            f.on_thread_outcome(lid(2), true);
        }
        f.on_thread_outcome(lid(1), true);
        f.on_thread_outcome(lid(2), false);
        assert!(f.is_suppressed(lid(1)));
        assert!(!f.is_suppressed(lid(2)));
        assert_eq!(f.suppressed_count(), 1);

        let p = IterPredictor::new();
        let mut c = ctx(&p, 2, 5, 0, 9);
        c.loop_id = lid(1);
        assert_eq!(f.threads_to_spawn(&c), 0, "suppressed loop spawns nothing");
        c.loop_id = lid(2);
        assert!(f.threads_to_spawn(&c) > 0);
    }

    #[test]
    fn suitability_filter_needs_min_samples() {
        let mut f = SuitabilityFilter::new(IdlePolicy::new(), 10, 0.25);
        for _ in 0..9 {
            f.on_thread_outcome(lid(1), false);
        }
        assert!(!f.is_suppressed(lid(1)), "below the sample floor");
        f.on_thread_outcome(lid(1), false);
        assert!(f.is_suppressed(lid(1)));
    }

    #[test]
    #[should_panic(expected = "max_wrong_rate")]
    fn suitability_filter_validates_rate() {
        let _ = SuitabilityFilter::new(StrPolicy::new(), 1, 1.5);
    }

    #[test]
    fn oracle_spawns_exact_remainder() {
        let p = IterPredictor::new();
        let o = OraclePolicy::new();
        assert_eq!(o.threads_to_spawn(&ctx(&p, 2, u64::MAX, 0, 7)), 7);
        assert_eq!(o.threads_to_spawn(&ctx(&p, 2, u64::MAX, 5, 7)), 2);
        assert_eq!(o.threads_to_spawn(&ctx(&p, 2, 1, 0, 7)), 1);
        assert!(o.supports_unbounded_tus());
        assert!(!StrPolicy::new().supports_unbounded_tus());
    }
}
