//! The two-phase streaming oracle (paper Figure 5 without a
//! materialized trace).
//!
//! Oracle policies consult the *future*: when an iteration starts,
//! [`OraclePolicy`](crate::OraclePolicy) spawns exactly the actual
//! remaining iterations of that execution. The batch
//! [`Engine`](crate::Engine) answers that question from a fully built
//! [`AnnotatedTrace`](crate::AnnotatedTrace) — O(trace) memory, a
//! second materialized pass. This module replaces that with the shape
//! Prophet-style speculation uses: **pre-compute the future inputs,
//! then stream**.
//!
//! * **Phase 1** — an [`IterationCountLog`] runs as an ordinary sink in
//!   the normal streaming fan-out. It records, per detected loop
//!   execution in program order, the execution's *final* iteration
//!   count — a few bytes per execution, nothing per iteration or per
//!   instruction.
//! * **Phase 2** — the log freezes into an [`OracleFeed`], and a second
//!   streaming pass (over the retained event stream, a re-execution, or
//!   a sharded/distributed replay) hosts oracle lanes: a
//!   [`StreamEngine`](crate::StreamEngine) built with
//!   [`with_feed`](crate::StreamEngine::with_feed) /
//!   [`unbounded_with_feed`](crate::StreamEngine::unbounded_with_feed),
//!   or [`EngineGrid`](crate::EngineGrid) oracle lanes. At every
//!   iteration start the driver looks the execution's total up in the
//!   feed and hands the policy its ground truth through
//!   [`SpecContext::remaining_from_feed`](crate::SpecContext).
//!
//! Reports are **bit-identical** to the batch oracle (the
//! `oracle_equivalence` suite proves it on all 18 workloads): the feed
//! answers exactly the question `ExecInfo::remaining_after` answered,
//! and execution ordinals are assigned in detection order by both the
//! streaming annotator and the batch trace builder.
//!
//! The log is a first-class [`SnapshotState`] citizen — a checkpoint
//! may cut mid-chunk through phase 1 and the restored log finishes with
//! identical counts — so phase 1 checkpoints, resumes and shards like
//! every other sink.
//!
//! ## Example
//!
//! ```
//! use loopspec_asm::ProgramBuilder;
//! use loopspec_core::{EventCollector, LoopEventSink};
//! use loopspec_cpu::{Cpu, RunLimits};
//! use loopspec_mt::{IterationCountLog, OraclePolicy, StreamEngine};
//!
//! let mut b = ProgramBuilder::new();
//! b.counted_loop(50, |b, _| b.work(20));
//! let program = b.finish()?;
//! let mut c = EventCollector::default();
//! Cpu::new().run(&program, &mut c, RunLimits::default())?;
//! let (events, n) = c.into_parts();
//!
//! // Phase 1: record per-execution iteration counts.
//! let mut log = IterationCountLog::new();
//! log.on_loop_events(&events);
//! log.on_stream_end(n);
//! let feed = log.into_feed();
//!
//! // Phase 2: stream the oracle with the feed as its future knowledge.
//! let mut oracle = StreamEngine::unbounded_with_feed(OraclePolicy::new(), feed)?;
//! oracle.on_loop_events(&events);
//! oracle.on_stream_end(n);
//! assert!(oracle.report().unwrap().tpc() > 10.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::Arc;

use loopspec_core::snap::{fnv1a_update, Dec, Enc, SnapError, FNV1A_INIT};
use loopspec_core::{LoopEvent, LoopEventSink, LoopId, SnapshotState};

/// Phase 1 of the two-phase streaming oracle: a cheap
/// [`LoopEventSink`] that records, per detected loop execution in
/// program order, the actual (final) iteration count.
///
/// Execution ordinals are assigned in detection order — the same order
/// the streaming annotator and
/// [`AnnotatedTrace`](crate::AnnotatedTrace) use — so a phase-2 pass
/// over the same stream looks its executions up by ordinal. Memory is
/// O(detected executions): one `u32` per execution plus the open-loop
/// bindings (bounded by the CLS nesting depth).
///
/// Executions still open when the stream ends (truncated runs) keep
/// their last observed iteration index as the count, exactly like the
/// batch annotator's trailing closes.
#[derive(Debug, Default, Clone)]
pub struct IterationCountLog {
    /// Final iteration count per execution ordinal. While an execution
    /// is open the slot holds its highest observed iteration index.
    counts: Vec<u32>,
    /// Loop id → ordinal of its open execution (at most the CLS
    /// nesting depth entries — a linear scan beats any hash).
    open: Vec<(LoopId, u32)>,
    /// `true` once the stream ended (the log is ready to feed).
    finished: bool,
}

impl IterationCountLog {
    /// An empty log.
    pub fn new() -> Self {
        IterationCountLog::default()
    }

    /// Number of executions recorded so far.
    pub fn executions(&self) -> usize {
        self.counts.len()
    }

    /// `true` once [`on_stream_end`](LoopEventSink::on_stream_end) was
    /// delivered.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Freezes the recorded counts into a shareable [`OracleFeed`]
    /// without consuming the log.
    pub fn feed(&self) -> OracleFeed {
        OracleFeed::new(self.counts.clone())
    }

    /// Consumes the log into its [`OracleFeed`].
    pub fn into_feed(self) -> OracleFeed {
        OracleFeed::new(self.counts)
    }
}

impl LoopEventSink for IterationCountLog {
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        match *ev {
            LoopEvent::ExecutionStart { loop_id, .. } => {
                debug_assert!(
                    self.open.iter().all(|&(l, _)| l != loop_id),
                    "loop {loop_id} already open"
                );
                self.open.push((loop_id, self.counts.len() as u32));
                // Iteration 1 is undetectable; an execution exists
                // because its second iteration started.
                self.counts.push(1);
            }
            LoopEvent::IterationStart { loop_id, iter, .. } => {
                if let Some(&(_, exec)) = self.open.iter().find(|&&(l, _)| l == loop_id) {
                    self.counts[exec as usize] = iter;
                }
            }
            LoopEvent::ExecutionEnd {
                loop_id,
                iterations,
                ..
            }
            | LoopEvent::Evicted {
                loop_id,
                iterations,
                ..
            } => {
                if let Some(i) = self.open.iter().position(|&(l, _)| l == loop_id) {
                    let (_, exec) = self.open.swap_remove(i);
                    self.counts[exec as usize] = iterations;
                }
            }
            LoopEvent::OneShot { .. } => {}
        }
    }

    fn on_stream_end(&mut self, _instructions: u64) {
        // Executions left open keep their last observed iteration
        // index — the same total the batch annotator assigns to
        // trailing closes.
        self.open.clear();
        self.finished = true;
    }
}

/// Serializes the log's counts and open-loop bindings so phase 1 can
/// checkpoint mid-stream (including mid-chunk) and resume with
/// identical final counts.
impl SnapshotState for IterationCountLog {
    fn save_state(&self, out: &mut Enc) {
        out.u64(self.counts.len() as u64);
        for &c in &self.counts {
            out.u32(c);
        }
        out.u64(self.open.len() as u64);
        for &(l, e) in &self.open {
            out.u32(l.0.index());
            out.u32(e);
        }
        out.bool(self.finished);
    }

    fn load_state(&mut self, src: &mut Dec<'_>) -> Result<(), SnapError> {
        let n = src.count_elems(4)?;
        self.counts.clear();
        self.counts.reserve(n);
        for _ in 0..n {
            self.counts.push(src.u32()?);
        }
        let n = src.count()?;
        self.open.clear();
        for _ in 0..n {
            let l = LoopId(loopspec_isa::Addr::new(src.u32()?));
            let e = src.u32()?;
            self.open.push((l, e));
        }
        self.finished = src.bool()?;
        Ok(())
    }
}

/// Phase 2 of the two-phase streaming oracle: the frozen per-execution
/// iteration counts, shared (cheaply clonable) across any number of
/// oracle lanes.
///
/// The feed answers the one question an oracle policy asks — "how many
/// iterations of execution `exec` remain after iteration `iter`?" —
/// which is exactly what
/// [`ExecInfo::remaining_after`](crate::ExecInfo::remaining_after)
/// answered on the materialized path. An execution ordinal beyond the
/// log (possible only when phase 2 streams *more* than phase 1 saw)
/// yields 0 remaining: the oracle speculates nothing rather than
/// guessing.
#[derive(Debug, Clone)]
pub struct OracleFeed {
    counts: Arc<[u32]>,
    /// FNV-1a over the counts — echoed into engine snapshots so a lane
    /// can never silently resume against a different future.
    fingerprint: u64,
}

impl OracleFeed {
    fn new(counts: Vec<u32>) -> Self {
        // FNV-1a over the counts' little-endian bytes — the same
        // digest as hashing their `Enc` serialization, without an
        // O(executions) scratch buffer per feed.
        let fingerprint = counts
            .iter()
            .fold(FNV1A_INIT, |h, c| fnv1a_update(h, &c.to_le_bytes()));
        OracleFeed {
            counts: counts.into(),
            fingerprint,
        }
    }

    /// Ground truth: iterations of execution `exec` remaining after
    /// iteration `iter` (0 for unknown executions).
    #[inline]
    pub fn remaining_after(&self, exec: u32, iter: u32) -> u32 {
        self.counts
            .get(exec as usize)
            .map_or(0, |&total| total.saturating_sub(iter))
    }

    /// The total iteration count of execution `exec`, if recorded.
    pub fn total_iters(&self, exec: u32) -> Option<u32> {
        self.counts.get(exec as usize).copied()
    }

    /// Number of recorded executions.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` when no executions were recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// A deterministic digest of the counts, echoed in engine
    /// snapshots ([`SnapError::Mismatch`] on resume against a
    /// different feed).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::AnnotatedTrace;
    use loopspec_asm::ProgramBuilder;
    use loopspec_core::EventCollector;
    use loopspec_cpu::{Cpu, RunLimits};

    fn events_of(build: impl FnOnce(&mut ProgramBuilder)) -> (Vec<LoopEvent>, u64) {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let p = b.finish().expect("assembles");
        let mut c = EventCollector::default();
        Cpu::new()
            .run(&p, &mut c, RunLimits::default())
            .expect("runs");
        c.into_parts()
    }

    fn log_of(events: &[LoopEvent], n: u64) -> IterationCountLog {
        let mut log = IterationCountLog::new();
        log.on_loop_events(events);
        log.on_stream_end(n);
        log
    }

    #[test]
    fn counts_match_the_annotated_trace() {
        let (events, n) = events_of(|b| {
            b.counted_loop(6, |b, _| {
                for _ in 0..2 {
                    b.counted_loop(11, |b, _| b.work(7));
                }
            });
        });
        let trace = AnnotatedTrace::build(&events, n);
        let log = log_of(&events, n);
        assert!(log.is_finished());
        assert_eq!(log.executions(), trace.execs.len());
        let feed = log.into_feed();
        for (exec, info) in trace.execs.iter().enumerate() {
            assert_eq!(feed.total_iters(exec as u32), Some(info.total_iters));
            for iter in 2..=info.total_iters + 2 {
                assert_eq!(
                    feed.remaining_after(exec as u32, iter),
                    info.remaining_after(iter),
                    "exec {exec} iter {iter}"
                );
            }
        }
    }

    #[test]
    fn truncated_streams_keep_the_last_observed_iteration() {
        let (mut events, _) = events_of(|b| {
            b.counted_loop(30, |b, _| {
                b.counted_loop(5, |b, _| b.work(6));
            });
        });
        events.truncate(events.len() / 2);
        let n = events.last().map_or(0, |e| e.pos()) + 10;
        let trace = AnnotatedTrace::build(&events, n);
        let feed = log_of(&events, n).into_feed();
        for (exec, info) in trace.execs.iter().enumerate() {
            assert_eq!(
                feed.total_iters(exec as u32),
                Some(info.total_iters),
                "exec {exec}"
            );
        }
    }

    #[test]
    fn unknown_executions_yield_zero_remaining() {
        let feed = IterationCountLog::new().into_feed();
        assert!(feed.is_empty());
        assert_eq!(feed.len(), 0);
        assert_eq!(feed.remaining_after(0, 2), 0);
        assert_eq!(feed.total_iters(7), None);
    }

    #[test]
    fn chunked_delivery_matches_per_event() {
        let (events, n) = events_of(|b| {
            b.counted_loop(9, |b, _| {
                b.counted_loop(14, |b, _| b.work(5));
            });
        });
        let per_event = {
            let mut log = IterationCountLog::new();
            for ev in &events {
                log.on_loop_event(ev);
            }
            log.on_stream_end(n);
            log.into_feed()
        };
        for chunk in [1usize, 3, 64, events.len().max(1)] {
            let mut log = IterationCountLog::new();
            for c in events.chunks(chunk) {
                log.on_loop_events(c);
            }
            log.on_stream_end(n);
            let feed = log.into_feed();
            assert_eq!(feed.fingerprint(), per_event.fingerprint(), "chunk {chunk}");
        }
    }

    #[test]
    fn snapshot_round_trip_is_exact_at_every_cut() {
        let (events, n) = events_of(|b| {
            b.counted_loop(8, |b, _| {
                b.counted_loop(6, |b, _| b.work(4));
            });
        });
        let reference = log_of(&events, n).into_feed();
        for cut in 0..=events.len() {
            let mut first = IterationCountLog::new();
            first.on_loop_events(&events[..cut]);
            let mut enc = Enc::new();
            first.save_state(&mut enc);
            let bytes = enc.into_bytes();

            let mut second = IterationCountLog::new();
            second.load_state(&mut Dec::new(&bytes)).expect("loads");
            second.on_loop_events(&events[cut..]);
            second.on_stream_end(n);
            assert_eq!(
                second.into_feed().fingerprint(),
                reference.fingerprint(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn corrupt_snapshot_is_rejected() {
        let mut dec = Dec::new(&[0xff; 3]);
        assert!(IterationCountLog::new().load_state(&mut dec).is_err());
    }

    #[test]
    fn fingerprints_distinguish_different_futures() {
        let (a, n) = events_of(|b| b.counted_loop(10, |b, _| b.work(5)));
        let (b_ev, m) = events_of(|b| b.counted_loop(11, |b, _| b.work(5)));
        let fa = log_of(&a, n).into_feed();
        let fb = log_of(&b_ev, m).into_feed();
        assert_ne!(fa.fingerprint(), fb.fingerprint());
    }
}
