//! # loopspec-mt — thread-level control speculation (paper §3)
//!
//! This crate implements the multithreaded-processor side of Tubella &
//! González (HPCA 1998): a machine with several **thread units (TUs)** —
//! one non-speculative, the rest idle or speculative — where, every time a
//! loop iteration starts in the non-speculative thread, idle TUs are
//! assigned to *future iterations of the same loop*. Verification happens
//! when the non-speculative thread reaches the next iteration start
//! (handoff) and squash happens when the loop execution ends (further
//! iterations never existed).
//!
//! The model is trace-driven and event-driven:
//!
//! * [`AnnotatedTrace`] — turns the loop-event stream of `loopspec-core`
//!   into per-execution iteration-start positions plus a commit-ordered
//!   event list;
//! * [`IterPredictor`] — the LET-backed iteration-count stride predictor
//!   with a two-bit confidence counter (the paper's STR machinery);
//! * [`SpeculationPolicy`] — IDLE, STR and STR(i) from §3.1.2, plus the
//!   oracle used for the infinite-TU potential study (Figure 5), which
//!   runs streaming through the **two-phase oracle** ([`IterationCountLog`]
//!   records per-execution iteration counts in a forward pass, an
//!   [`OracleFeed`] replays them into oracle lanes in a second
//!   streaming pass);
//! * [`Engine`] — computes **TPC** (average number of active and
//!   correctly-speculated threads per cycle) under the timing model
//!   described in `DESIGN.md`: every TU retires one instruction per
//!   cycle, so TPC equals committed instructions divided by total cycles,
//!   and a purely sequential run has TPC exactly 1.
//!
//! The streaming drivers ([`StreamEngine`], [`EngineGrid`]) are
//! **checkpointable**: they implement
//! [`SnapshotState`](loopspec_core::SnapshotState), serializing their
//! full mid-stream state (annotation windows, decision core, predictor
//! history, policy feedback via [`PolicySnapshot`]) so a
//! `loopspec_pipeline::Session` can capture a run at any
//! retired-instruction boundary and resume it elsewhere bit-identically.
//!
//! ## Example
//!
//! ```
//! use loopspec_asm::ProgramBuilder;
//! use loopspec_cpu::{Cpu, RunLimits};
//! use loopspec_core::EventCollector;
//! use loopspec_mt::{AnnotatedTrace, Engine, StrPolicy};
//!
//! let mut b = ProgramBuilder::new();
//! b.counted_loop(50, |b, _| b.work(20));
//! let program = b.finish()?;
//!
//! let mut c = EventCollector::default();
//! Cpu::new().run(&program, &mut c, RunLimits::default())?;
//! let (events, n) = c.into_parts();
//! let trace = AnnotatedTrace::build(&events, n);
//!
//! let report = Engine::new(&trace, StrPolicy::new(), 4).run();
//! assert!(report.tpc() > 1.5, "4 TUs should overlap iterations");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod annotate;
mod engine;
mod grid;
mod hash;
mod ideal;
mod oracle;
mod policy;
mod predictor;
mod stats;
mod stream;

pub use annotate::{AnnotatedTrace, ExecId, ExecInfo, TraceEvent, TraceEventKind};
pub use engine::{Engine, EngineReport};
pub use grid::EngineGrid;
pub use ideal::{ideal_tpc, ideal_tpc_streaming, ideal_tpc_with_feed, prefix_split, IdealReport};
pub use oracle::{IterationCountLog, OracleFeed};
pub use policy::{
    IdlePolicy, OraclePolicy, PolicySnapshot, SpecContext, SpeculationPolicy, StrNestedPolicy,
    StrPolicy, SuitabilityFilter,
};
pub use predictor::{IterPrediction, IterPredictor};
pub use stats::SpecStats;
pub use stream::{validate_tus, AnyStreamEngine, EngineSink, StreamEngine, StreamError};
