//! The event-driven multithreading engine.
//!
//! Timing model (see `DESIGN.md` §4.3): every thread unit retires one
//! instruction per cycle. A speculative thread spawned at time `s` for a
//! stream region starting at `a` executes self-paced; the commit frontier
//! inside the thread that is currently non-speculative advances as
//! `time(p) = max(h, s + (p - a))` where `h` is the handoff time at which
//! it became non-speculative. Verification (handoff) happens when the
//! frontier reaches a speculated iteration's start; squash happens when a
//! loop execution ends with phantom iterations outstanding, or when the
//! STR(i) nesting rule fires.
//!
//! Because each correctly-speculated thread is active for exactly the
//! cycles it takes to execute its committed region, the sum of
//! active-and-correct thread-cycles equals the trace's instruction count,
//! and **TPC = instructions / total cycles**. A run without speculation
//! therefore has TPC exactly 1.
//!
//! The decision logic lives in [`EngineCore`], which is driven by two
//! front ends that produce bit-identical [`EngineReport`]s:
//!
//! * [`Engine`] — the batch driver: replays a fully built
//!   [`AnnotatedTrace`] (required for oracle policies, which consult
//!   future iteration counts);
//! * [`StreamEngine`](crate::StreamEngine) — the streaming driver:
//!   consumes raw `LoopEvent`s as the detector emits them, buffering only
//!   a bounded run-ahead window.

use std::collections::BTreeSet;

use loopspec_core::LoopId;

use crate::annotate::{AnnotatedTrace, TraceEventKind};
use crate::hash::FastMap;
use crate::policy::{SpecContext, SpeculationPolicy};
use crate::predictor::IterPredictor;
use crate::stats::SpecStats;

/// Result of an [`Engine`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Committed instructions (= the trace length).
    pub instructions: u64,
    /// Total cycles until the last instruction committed.
    pub cycles: u64,
    /// Speculation counters (Table 2 columns).
    pub spec: SpecStats,
    /// Name of the policy that produced this report.
    pub policy: &'static str,
    /// Thread units used (`None` = unbounded).
    pub tus: Option<usize>,
}

impl EngineReport {
    /// Threads per cycle: the paper's headline metric.
    pub fn tpc(&self) -> f64 {
        if self.cycles == 0 {
            1.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The current non-speculative thread: the region it started at, when it
/// began executing, and when it became non-speculative.
#[derive(Debug, Clone, Copy)]
struct CurThread {
    start_pos: u64,
    spawn_time: u64,
    handoff_time: u64,
}

impl CurThread {
    /// Commit time of stream position `pos` (≥ `start_pos`).
    #[inline]
    fn time_at(&self, pos: u64) -> u64 {
        self.handoff_time
            .max(self.spawn_time + (pos - self.start_pos))
    }
}

/// A live speculative thread for one future iteration.
#[derive(Debug, Clone, Copy)]
struct Segment {
    spawn_time: u64,
    spawn_pos: u64,
}

/// Per-execution speculation bookkeeping.
#[derive(Debug, Default)]
struct ExecSpec {
    /// Live speculated iteration indices (consecutive, all in the
    /// future).
    live: BTreeSet<u32>,
    /// Non-speculated loop executions detected nested inside this one
    /// while it had live threads (the STR(i) counter).
    nested_nonspec: u32,
}

/// The driver-independent speculation state machine.
///
/// Consumes execution/iteration boundary events keyed by a dense
/// execution ordinal (assigned in detection order by the driver) and
/// makes every spawn / verify / squash decision. Front ends only differ
/// in *when* they can afford to deliver an event:
///
/// * the batch [`Engine`] has the whole trace, so it feeds events
///   eagerly and answers iteration-position lookups from the
///   [`AnnotatedTrace`];
/// * the streaming driver must delay an iteration event until the stream
///   frontier passes [`EngineCore::iter_start_horizon`], the highest
///   position the spawn decision can consult.
#[derive(Debug)]
pub(crate) struct EngineCore<P> {
    policy: P,
    total_tus: u64,
    tus_label: Option<usize>,
    nesting_limit: Option<u32>,
    cur: CurThread,
    segments: FastMap<(u32, u32), Segment>,
    spec: FastMap<u32, ExecSpec>,
    open_stack: Vec<u32>,
    live_total: u64,
    predictor: IterPredictor,
    stats: SpecStats,
}

/// Hard cap on finite TU counts (far above the paper's 16).
const MAX_TUS: usize = 4096;

impl<P: SpeculationPolicy> EngineCore<P> {
    pub(crate) fn new(policy: P, total_tus: u64, tus_label: Option<usize>) -> Self {
        let nesting_limit = policy.max_nonspec_nested();
        EngineCore {
            policy,
            total_tus,
            tus_label,
            nesting_limit,
            cur: CurThread {
                start_pos: 0,
                spawn_time: 0,
                handoff_time: 0,
            },
            segments: FastMap::default(),
            spec: FastMap::default(),
            open_stack: Vec::new(),
            live_total: 0,
            predictor: IterPredictor::new(),
            stats: SpecStats::default(),
        }
    }

    #[inline]
    fn idle(&self) -> u64 {
        self.total_tus.saturating_sub(1 + self.live_total)
    }

    /// A new loop execution was detected.
    pub(crate) fn exec_start(&mut self, exec: u32) {
        self.open_stack.push(exec);
    }

    /// The highest stream position the decision at an
    /// `iter_start(exec, iter, pos)` event may consult: the self-paced
    /// run-ahead of the thread that will be non-speculative after
    /// verification. A streaming driver must not deliver the event before
    /// it has observed the stream up to this position (events with
    /// positions `< horizon` must all be known).
    pub(crate) fn iter_start_horizon(&self, exec: u32, iter: u32, pos: u64) -> u64 {
        let t = self.cur.time_at(pos);
        if let Some(seg) = self.segments.get(&(exec, iter)) {
            let seg_virtual = seg.spawn_time as i128 - pos as i128;
            let cur_virtual = self.cur.spawn_time as i128 - self.cur.start_pos as i128;
            if seg_virtual <= cur_virtual {
                // Verification will hand off to this segment.
                return pos + (t - seg.spawn_time);
            }
        }
        self.cur.start_pos + (t - self.cur.spawn_time)
    }

    /// Iteration `iter` (≥ 2) of execution `exec` starts at `pos`.
    ///
    /// `iter_pos` answers "at which stream position does iteration `j` of
    /// this execution start?" for any `j` up to the horizon (`None` when
    /// the iteration does not exist or starts at/after the horizon).
    /// `remaining_from_feed` is ground truth for oracle policies — the
    /// batch driver reads it off the annotated trace, streaming drivers
    /// off an [`OracleFeed`](crate::OracleFeed) (feed-less streaming
    /// drivers pass 0 and refuse future-knowledge policies).
    pub(crate) fn iter_start(
        &mut self,
        exec: u32,
        loop_id: LoopId,
        iter: u32,
        pos: u64,
        iter_pos: &dyn Fn(u32) -> Option<u64>,
        remaining_from_feed: u32,
    ) {
        let t = self.cur.time_at(pos);

        // --- Verification: handoff to the speculated thread for this
        // iteration, if one exists. A segment whose self-paced progress
        // lags the current thread's run-ahead is *stale* (its work is
        // redundant) and is discarded instead of taking over the
        // frontier.
        if let Some(seg) = self.segments.remove(&(exec, iter)) {
            self.live_total -= 1;
            if let Some(st) = self.spec.get_mut(&exec) {
                st.live.remove(&iter);
            }
            self.stats.instr_to_outcome_sum += pos - seg.spawn_pos;
            self.policy.on_thread_outcome(loop_id, true);
            let seg_virtual = seg.spawn_time as i128 - pos as i128;
            let cur_virtual = self.cur.spawn_time as i128 - self.cur.start_pos as i128;
            if seg_virtual <= cur_virtual {
                self.stats.verified += 1;
                self.cur = CurThread {
                    start_pos: pos,
                    spawn_time: seg.spawn_time,
                    handoff_time: t,
                };
            } else {
                self.stats.squashed_stale += 1;
            }
        }

        // --- Speculation attempt.
        let spawned =
            self.attempt_spawn(exec, loop_id, iter, pos, t, iter_pos, remaining_from_feed);

        // --- STR(i): a newly detected execution that could not speculate
        // counts against enclosing speculated loops; exceeding the limit
        // squashes the outermost one and retries.
        if spawned == 0 && iter == 2 {
            if let Some(limit) = self.nesting_limit {
                let mut victim: Option<u32> = None;
                for k in 0..self.open_stack.len() {
                    let g = self.open_stack[k];
                    if g == exec {
                        continue;
                    }
                    if let Some(st) = self.spec.get_mut(&g) {
                        if !st.live.is_empty() {
                            st.nested_nonspec += 1;
                            if st.nested_nonspec > limit && victim.is_none() {
                                victim = Some(g);
                            }
                        }
                    }
                }
                if let Some(g) = victim {
                    // Policy squashes sacrifice *correct* speculation;
                    // they do not count against a loop's suitability.
                    let _ = self.squash_exec(g, pos, false);
                    let _ = self.attempt_spawn(
                        exec,
                        loop_id,
                        iter,
                        pos,
                        t,
                        iter_pos,
                        remaining_from_feed,
                    );
                }
            }
        }
    }

    /// Execution `exec` ended at `pos`. `closed` is `false` for
    /// evictions and truncated traces; `total_iters` is the execution's
    /// final iteration count.
    pub(crate) fn exec_end(
        &mut self,
        exec: u32,
        loop_id: LoopId,
        pos: u64,
        closed: bool,
        total_iters: u32,
    ) {
        self.open_stack.retain(|&g| g != exec);
        let squashed = self.squash_exec(exec, pos, true);
        for _ in 0..squashed {
            self.policy.on_thread_outcome(loop_id, false);
        }
        self.spec.remove(&exec);
        if closed {
            self.predictor.record_execution(loop_id, total_iters);
        }
    }

    /// Serializes the decision-machine state: the current thread's
    /// timing cursor, every live speculative segment, per-execution
    /// speculation bookkeeping, the open-execution stack, the iteration
    /// predictor (LET), the statistics counters, and the policy's
    /// mutable state. Map contents are written sorted by key so equal
    /// state yields equal bytes. The configuration (TU count, nesting
    /// limit) is echoed for verification at load time.
    pub(crate) fn save_state(&self, out: &mut loopspec_core::snap::Enc)
    where
        P: crate::policy::PolicySnapshot,
    {
        out.u64(self.total_tus);
        out.u64(self.tus_label.map_or(u64::MAX, |t| t as u64));
        out.u32(self.nesting_limit.map_or(u32::MAX, |l| l));
        out.u64(self.cur.start_pos);
        out.u64(self.cur.spawn_time);
        out.u64(self.cur.handoff_time);

        let mut segments: Vec<(&(u32, u32), &Segment)> = self.segments.iter().collect();
        segments.sort_unstable_by_key(|(k, _)| **k);
        out.u64(segments.len() as u64);
        for (&(exec, iter), seg) in segments {
            out.u32(exec);
            out.u32(iter);
            out.u64(seg.spawn_time);
            out.u64(seg.spawn_pos);
        }

        let mut spec: Vec<(&u32, &ExecSpec)> = self.spec.iter().collect();
        spec.sort_unstable_by_key(|(k, _)| **k);
        out.u64(spec.len() as u64);
        for (&exec, st) in spec {
            out.u32(exec);
            out.u64(st.live.len() as u64);
            for &iter in &st.live {
                out.u32(iter);
            }
            out.u32(st.nested_nonspec);
        }

        out.u64(self.open_stack.len() as u64);
        for &exec in &self.open_stack {
            out.u32(exec);
        }
        out.u64(self.live_total);
        loopspec_core::SnapshotState::save_state(&self.predictor, out);
        out.u64(self.stats.spec_actions);
        out.u64(self.stats.threads_spawned);
        out.u64(self.stats.verified);
        out.u64(self.stats.squashed_misspec);
        out.u64(self.stats.squashed_policy);
        out.u64(self.stats.squashed_stale);
        out.u64(self.stats.instr_to_outcome_sum);
        self.policy.save_policy_state(out);
    }

    /// Restores state written by [`EngineCore::save_state`] into a core
    /// constructed with the **same configuration** (policy, TU count).
    pub(crate) fn load_state(
        &mut self,
        src: &mut loopspec_core::snap::Dec<'_>,
    ) -> Result<(), loopspec_core::snap::SnapError>
    where
        P: crate::policy::PolicySnapshot,
    {
        use loopspec_core::snap::SnapError;
        if src.u64()? != self.total_tus {
            return Err(SnapError::Mismatch { what: "TU count" });
        }
        if src.u64()? != self.tus_label.map_or(u64::MAX, |t| t as u64) {
            return Err(SnapError::Mismatch { what: "TU label" });
        }
        if src.u32()? != self.nesting_limit.map_or(u32::MAX, |l| l) {
            return Err(SnapError::Mismatch {
                what: "nesting limit",
            });
        }
        self.cur = CurThread {
            start_pos: src.u64()?,
            spawn_time: src.u64()?,
            handoff_time: src.u64()?,
        };

        let n = src.count()?;
        self.segments.clear();
        for _ in 0..n {
            let exec = src.u32()?;
            let iter = src.u32()?;
            let seg = Segment {
                spawn_time: src.u64()?,
                spawn_pos: src.u64()?,
            };
            self.segments.insert((exec, iter), seg);
        }

        let n = src.count()?;
        self.spec.clear();
        for _ in 0..n {
            let exec = src.u32()?;
            let live_n = src.count()?;
            let mut live = BTreeSet::new();
            for _ in 0..live_n {
                live.insert(src.u32()?);
            }
            let nested_nonspec = src.u32()?;
            self.spec.insert(
                exec,
                ExecSpec {
                    live,
                    nested_nonspec,
                },
            );
        }

        let n = src.count()?;
        self.open_stack.clear();
        for _ in 0..n {
            self.open_stack.push(src.u32()?);
        }
        self.live_total = src.u64()?;
        loopspec_core::SnapshotState::load_state(&mut self.predictor, src)?;
        self.stats = SpecStats {
            spec_actions: src.u64()?,
            threads_spawned: src.u64()?,
            verified: src.u64()?,
            squashed_misspec: src.u64()?,
            squashed_policy: src.u64()?,
            squashed_stale: src.u64()?,
            instr_to_outcome_sum: src.u64()?,
        };
        self.policy.load_policy_state(src)
    }

    /// Produces the report once the stream has ended.
    pub(crate) fn report(&self, instructions: u64) -> EngineReport {
        EngineReport {
            instructions,
            cycles: self.cur.time_at(instructions),
            spec: self.stats,
            policy: self.policy.name(),
            tus: self.tus_label,
        }
    }

    /// Launches new speculative threads per the policy; returns how many.
    ///
    /// Iterations whose start the current thread's speculative run-ahead
    /// has already executed are not spawned — a TU pointed at work the
    /// non-speculative thread has already done contributes nothing (it
    /// would be discarded as stale at verification).
    #[allow(clippy::too_many_arguments)]
    fn attempt_spawn(
        &mut self,
        exec: u32,
        loop_id: LoopId,
        iter: u32,
        pos: u64,
        t: u64,
        iter_pos: &dyn Fn(u32) -> Option<u64>,
        remaining_from_feed: u32,
    ) -> u64 {
        let idle = self.idle();
        if idle == 0 {
            return 0;
        }
        let already = self.spec.get(&exec).map_or(0, |s| s.live.len()) as u32;
        let ctx = SpecContext {
            loop_id,
            current_iter: iter,
            idle_tus: idle,
            already_speculated: already,
            predictor: &self.predictor,
            remaining_from_feed,
        };
        let n = self.policy.threads_to_spawn(&ctx).min(idle);
        if n == 0 {
            return 0;
        }
        // Self-paced position the current thread has reached by time t.
        let covered = self.cur.start_pos + (t - self.cur.spawn_time);
        let st = self.spec.entry(exec).or_default();
        let next = st.live.iter().next_back().copied().unwrap_or(iter) + 1;
        let mut spawned = 0u64;
        for j in next..next + n as u32 {
            if let Some(p) = iter_pos(j) {
                if p < covered {
                    continue; // already executed by the run-ahead
                }
            }
            self.segments.insert(
                (exec, j),
                Segment {
                    spawn_time: t,
                    spawn_pos: pos,
                },
            );
            st.live.insert(j);
            spawned += 1;
        }
        if spawned == 0 {
            return 0;
        }
        // Speculating resets the exec's STR(i) pressure counter.
        st.nested_nonspec = 0;
        self.live_total += spawned;
        self.stats.spec_actions += 1;
        self.stats.threads_spawned += spawned;
        spawned
    }

    /// Squashes every live thread of `exec`, freeing its TUs.
    /// `misspec = true` for loop-end squashes (phantom iterations),
    /// `false` for STR(i) policy squashes (correct work sacrificed).
    fn squash_exec(&mut self, exec: u32, pos: u64, misspec: bool) -> u64 {
        let Some(st) = self.spec.get_mut(&exec) else {
            return 0;
        };
        let mut squashed = 0;
        for iter in std::mem::take(&mut st.live) {
            let seg = self
                .segments
                .remove(&(exec, iter))
                .expect("live set and segment map agree");
            self.live_total -= 1;
            self.stats.instr_to_outcome_sum += pos - seg.spawn_pos;
            if misspec {
                self.stats.squashed_misspec += 1;
            } else {
                self.stats.squashed_policy += 1;
            }
            squashed += 1;
        }
        st.nested_nonspec = 0;
        squashed
    }
}

/// The multithreaded control-speculation engine (paper §3.1), batch
/// driver: replays a prebuilt [`AnnotatedTrace`].
///
/// Drive it with [`Engine::run`]; it never mutates the trace and can be
/// re-created cheaply for policy/TU sweeps. See the
/// [crate docs](crate) for an end-to-end example and the module docs for
/// the timing model. For single-pass processing without a materialized
/// trace, use [`StreamEngine`](crate::StreamEngine) — both drivers
/// produce identical reports for history-based policies.
#[derive(Debug)]
pub struct Engine<'a, P> {
    trace: &'a AnnotatedTrace,
    policy: P,
    total_tus: u64,
    tus_label: Option<usize>,
}

impl<'a, P: SpeculationPolicy> Engine<'a, P> {
    /// Creates an engine with `num_tus` thread units (one of which is
    /// always the non-speculative one).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= num_tus <= 4096`.
    pub fn new(trace: &'a AnnotatedTrace, policy: P, num_tus: usize) -> Self {
        assert!(
            (2..=MAX_TUS).contains(&num_tus),
            "num_tus must be in 2..=4096 (got {num_tus}); use Engine::unbounded for the ideal machine"
        );
        Engine {
            trace,
            policy,
            total_tus: num_tus as u64,
            tus_label: Some(num_tus),
        }
    }

    /// Creates an engine with an unbounded TU pool — the ideal machine of
    /// the paper's Figure 5.
    ///
    /// # Panics
    ///
    /// Panics when the policy could over-speculate without a TU bound
    /// (only oracle-style policies report
    /// [`SpeculationPolicy::supports_unbounded_tus`]).
    pub fn unbounded(trace: &'a AnnotatedTrace, policy: P) -> Self {
        assert!(
            policy.supports_unbounded_tus(),
            "policy {} cannot run with unbounded TUs",
            policy.name()
        );
        Engine {
            trace,
            policy,
            total_tus: u64::MAX,
            tus_label: None,
        }
    }

    /// Runs the engine over the whole trace.
    pub fn run(self) -> EngineReport {
        let Engine {
            trace,
            policy,
            total_tus,
            tus_label,
        } = self;
        let mut core = EngineCore::new(policy, total_tus, tus_label);

        for ev in &trace.events {
            let exec = ev.exec.0;
            match ev.kind {
                TraceEventKind::ExecStart => core.exec_start(exec),
                TraceEventKind::IterStart { iter } => {
                    let info = trace.exec(ev.exec);
                    core.iter_start(
                        exec,
                        info.loop_id,
                        iter,
                        ev.pos,
                        &|j| info.iter_pos(j),
                        info.remaining_after(iter),
                    );
                }
                TraceEventKind::ExecEnd => {
                    let info = trace.exec(ev.exec);
                    core.exec_end(exec, info.loop_id, ev.pos, info.closed, info.total_iters);
                }
            }
        }

        core.report(trace.instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{IdlePolicy, OraclePolicy, StrNestedPolicy, StrPolicy};
    use loopspec_asm::ProgramBuilder;
    use loopspec_core::EventCollector;
    use loopspec_cpu::{Cpu, RunLimits};

    fn trace_of(build: impl FnOnce(&mut ProgramBuilder)) -> AnnotatedTrace {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let p = b.finish().expect("assembles");
        let mut c = EventCollector::default();
        Cpu::new()
            .run(&p, &mut c, RunLimits::default())
            .expect("runs");
        let (events, n) = c.into_parts();
        AnnotatedTrace::build(&events, n)
    }

    #[test]
    fn sequential_trace_has_tpc_one() {
        let trace = trace_of(|b| b.work(50));
        let r = Engine::new(&trace, StrPolicy::new(), 4).run();
        assert_eq!(r.cycles, r.instructions);
        assert!((r.tpc() - 1.0).abs() < 1e-12);
        assert_eq!(r.spec.threads_spawned, 0);
    }

    #[test]
    fn ideal_oracle_matches_hand_analysis() {
        // Hand-built trace: 100 instructions, one 10-iteration loop with
        // iteration starts every 10 instructions from 10 to 90.
        use loopspec_core::{LoopEvent, LoopId};
        use loopspec_isa::Addr;
        let lid = LoopId(Addr::new(1));
        let mut ev = vec![LoopEvent::ExecutionStart {
            loop_id: lid,
            pos: 10,
            depth: 1,
        }];
        for k in 2..=10u32 {
            ev.push(LoopEvent::IterationStart {
                loop_id: lid,
                iter: k,
                pos: (k as u64 - 1) * 10,
            });
        }
        ev.push(LoopEvent::ExecutionEnd {
            loop_id: lid,
            iterations: 10,
            pos: 100,
        });
        let trace = AnnotatedTrace::build(&ev, 100);
        let r = Engine::unbounded(&trace, OraclePolicy::new()).run();
        // Critical path: 10 cycles to reach the loop detection point plus
        // 10 cycles for every thread to finish its 10-instruction
        // iteration — all iterations overlap.
        assert_eq!(r.cycles, 20);
        assert!((r.tpc() - 5.0).abs() < 1e-12);
        assert_eq!(r.spec.verified, 8); // iterations 3..=10
        assert_eq!(r.spec.squashed_misspec, 0);
    }

    #[test]
    fn two_tus_cap_tpc_at_two() {
        let trace = trace_of(|b| b.counted_loop(200, |b, _| b.work(30)));
        let r = Engine::new(&trace, IdlePolicy::new(), 2).run();
        assert!(r.tpc() > 1.4, "tpc = {}", r.tpc());
        assert!(r.tpc() <= 2.0 + 1e-9);
    }

    #[test]
    fn more_tus_do_not_hurt_a_simple_loop() {
        let trace = trace_of(|b| b.counted_loop(100, |b, _| b.work(25)));
        let r2 = Engine::new(&trace, StrPolicy::new(), 2).run();
        let r4 = Engine::new(&trace, StrPolicy::new(), 4).run();
        let r8 = Engine::new(&trace, StrPolicy::new(), 8).run();
        assert!(r4.tpc() >= r2.tpc() - 1e-9);
        assert!(r8.tpc() >= r4.tpc() - 1e-9);
        assert!(r8.tpc() > 3.0, "single hot loop should scale: {}", r8.tpc());
    }

    #[test]
    fn idle_policy_misspeculates_at_loop_ends() {
        // Two executions of the same loop: IDLE always grabs all TUs, so
        // it runs past the end of each execution.
        let trace = trace_of(|b| {
            b.counted_loop(2, |b, _| {
                b.counted_loop(20, |b, _| b.work(10));
            });
        });
        let r = Engine::new(&trace, IdlePolicy::new(), 8).run();
        assert!(
            r.spec.squashed_misspec > 0,
            "IDLE should overshoot: {:?}",
            r.spec
        );
    }

    #[test]
    fn str_avoids_misspeculation_on_regular_loops() {
        // Ten executions of the *same static loop*, reached through
        // straight-line calls (no enclosing loop to hoard TUs): after a
        // warm-up execution the stride predictor sizes bursts exactly,
        // while IDLE keeps grabbing TUs past each execution's end.
        let trace = trace_of(|b| {
            b.define_func("kernel", |b| {
                b.counted_loop(20, |b, _| b.work(10));
            });
            for _ in 0..10 {
                b.call_func("kernel");
            }
        });
        let idle = Engine::new(&trace, IdlePolicy::new(), 8).run();
        let strp = Engine::new(&trace, StrPolicy::new(), 8).run();
        assert!(
            strp.spec.squashed_misspec < idle.spec.squashed_misspec,
            "STR {:?} vs IDLE {:?}",
            strp.spec,
            idle.spec
        );
        assert!(strp.spec.hit_ratio_percent() > 90.0);
    }

    #[test]
    fn str_nested_squashes_outer_threads_for_inner_loops() {
        // An outer loop whose iterations each contain several sequential
        // inner loops: with few TUs the outer loop hoards them, and
        // STR(1) must squash it.
        let trace = trace_of(|b| {
            b.counted_loop(6, |b, _| {
                for _ in 0..3 {
                    b.counted_loop(12, |b, _| b.work(8));
                }
            });
        });
        let str_plain = Engine::new(&trace, StrPolicy::new(), 4).run();
        let str1 = Engine::new(&trace, StrNestedPolicy::new(1), 4).run();
        assert_eq!(str_plain.spec.squashed_policy, 0);
        assert!(
            str1.spec.squashed_policy > 0,
            "STR(1) must fire: {:?}",
            str1.spec
        );
    }

    #[test]
    fn report_bookkeeping_is_consistent() {
        let trace = trace_of(|b| {
            b.counted_loop(5, |b, _| {
                b.counted_loop(10, |b, _| b.work(5));
            });
        });
        let r = Engine::new(&trace, StrPolicy::new(), 4).run();
        assert_eq!(
            r.spec.threads_spawned,
            r.spec.resolved(),
            "every thread resolves by trace end"
        );
        assert!(r.cycles <= r.instructions);
        assert_eq!(r.policy, "STR");
        assert_eq!(r.tus, Some(4));
    }

    #[test]
    #[should_panic(expected = "num_tus must be in 2..=4096")]
    fn rejects_one_tu() {
        let trace = trace_of(|b| b.work(1));
        let _ = Engine::new(&trace, StrPolicy::new(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot run with unbounded TUs")]
    fn rejects_unbounded_idle() {
        let trace = trace_of(|b| b.work(1));
        let _ = Engine::unbounded(&trace, IdlePolicy::new());
    }

    #[test]
    fn empty_trace_reports_tpc_one() {
        let trace = AnnotatedTrace::build(&[], 0);
        let r = Engine::new(&trace, StrPolicy::new(), 4).run();
        assert_eq!(r.cycles, 0);
        assert_eq!(r.tpc(), 1.0);
    }
}
