//! The trace-driven, event-driven multithreading engine.
//!
//! Timing model (see `DESIGN.md` §4.3): every thread unit retires one
//! instruction per cycle. A speculative thread spawned at time `s` for a
//! stream region starting at `a` executes self-paced; the commit frontier
//! inside the thread that is currently non-speculative advances as
//! `time(p) = max(h, s + (p - a))` where `h` is the handoff time at which
//! it became non-speculative. Verification (handoff) happens when the
//! frontier reaches a speculated iteration's start; squash happens when a
//! loop execution ends with phantom iterations outstanding, or when the
//! STR(i) nesting rule fires.
//!
//! Because each correctly-speculated thread is active for exactly the
//! cycles it takes to execute its committed region, the sum of
//! active-and-correct thread-cycles equals the trace's instruction count,
//! and **TPC = instructions / total cycles**. A run without speculation
//! therefore has TPC exactly 1.

use std::collections::{BTreeSet, HashMap};

use crate::annotate::{AnnotatedTrace, ExecId, TraceEventKind};
use crate::policy::{SpecContext, SpeculationPolicy};
use crate::predictor::IterPredictor;
use crate::stats::SpecStats;

/// Result of an [`Engine`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Committed instructions (= the trace length).
    pub instructions: u64,
    /// Total cycles until the last instruction committed.
    pub cycles: u64,
    /// Speculation counters (Table 2 columns).
    pub spec: SpecStats,
    /// Name of the policy that produced this report.
    pub policy: &'static str,
    /// Thread units used (`None` = unbounded).
    pub tus: Option<usize>,
}

impl EngineReport {
    /// Threads per cycle: the paper's headline metric.
    pub fn tpc(&self) -> f64 {
        if self.cycles == 0 {
            1.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The current non-speculative thread: the region it started at, when it
/// began executing, and when it became non-speculative.
#[derive(Debug, Clone, Copy)]
struct CurThread {
    start_pos: u64,
    spawn_time: u64,
    handoff_time: u64,
}

impl CurThread {
    /// Commit time of stream position `pos` (≥ `start_pos`).
    #[inline]
    fn time_at(&self, pos: u64) -> u64 {
        self.handoff_time
            .max(self.spawn_time + (pos - self.start_pos))
    }
}

/// A live speculative thread for one future iteration.
#[derive(Debug, Clone, Copy)]
struct Segment {
    spawn_time: u64,
    spawn_pos: u64,
}

/// Per-execution speculation bookkeeping.
#[derive(Debug, Default)]
struct ExecSpec {
    /// Live speculated iteration indices (consecutive, all in the
    /// future).
    live: BTreeSet<u32>,
    /// Non-speculated loop executions detected nested inside this one
    /// while it had live threads (the STR(i) counter).
    nested_nonspec: u32,
}

/// The multithreaded control-speculation engine (paper §3.1).
///
/// Drive it with [`Engine::run`]; it never mutates the trace and can be
/// re-created cheaply for policy/TU sweeps. See the
/// [crate docs](crate) for an end-to-end example and the module docs for
/// the timing model.
#[derive(Debug)]
pub struct Engine<'a, P> {
    trace: &'a AnnotatedTrace,
    policy: P,
    total_tus: u64,
    tus_label: Option<usize>,
}

/// Hard cap on finite TU counts (far above the paper's 16).
const MAX_TUS: usize = 4096;

impl<'a, P: SpeculationPolicy> Engine<'a, P> {
    /// Creates an engine with `num_tus` thread units (one of which is
    /// always the non-speculative one).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= num_tus <= 4096`.
    pub fn new(trace: &'a AnnotatedTrace, policy: P, num_tus: usize) -> Self {
        assert!(
            (2..=MAX_TUS).contains(&num_tus),
            "num_tus must be in 2..=4096 (got {num_tus}); use Engine::unbounded for the ideal machine"
        );
        Engine {
            trace,
            policy,
            total_tus: num_tus as u64,
            tus_label: Some(num_tus),
        }
    }

    /// Creates an engine with an unbounded TU pool — the ideal machine of
    /// the paper's Figure 5.
    ///
    /// # Panics
    ///
    /// Panics when the policy could over-speculate without a TU bound
    /// (only oracle-style policies report
    /// [`SpeculationPolicy::supports_unbounded_tus`]).
    pub fn unbounded(trace: &'a AnnotatedTrace, policy: P) -> Self {
        assert!(
            policy.supports_unbounded_tus(),
            "policy {} cannot run with unbounded TUs",
            policy.name()
        );
        Engine {
            trace,
            policy,
            total_tus: u64::MAX,
            tus_label: None,
        }
    }

    /// Runs the engine over the whole trace.
    pub fn run(self) -> EngineReport {
        let Engine {
            trace,
            mut policy,
            total_tus,
            tus_label,
        } = self;
        let policy_name = policy.name();
        let nesting_limit = policy.max_nonspec_nested();

        let mut cur = CurThread {
            start_pos: 0,
            spawn_time: 0,
            handoff_time: 0,
        };
        let mut segments: HashMap<(ExecId, u32), Segment> = HashMap::new();
        let mut spec: HashMap<ExecId, ExecSpec> = HashMap::new();
        let mut open_stack: Vec<ExecId> = Vec::new();
        let mut live_total: u64 = 0;
        let mut predictor = IterPredictor::new();
        let mut stats = SpecStats::default();

        let idle = |live_total: u64| total_tus.saturating_sub(1 + live_total);

        for ev in &trace.events {
            let t = cur.time_at(ev.pos);
            match ev.kind {
                TraceEventKind::ExecStart => {
                    open_stack.push(ev.exec);
                }
                TraceEventKind::IterStart { iter } => {
                    // --- Verification: handoff to the speculated thread
                    // for this iteration, if one exists. A segment whose
                    // self-paced progress lags the current thread's
                    // run-ahead is *stale* (its work is redundant) and is
                    // discarded instead of taking over the frontier.
                    if let Some(seg) = segments.remove(&(ev.exec, iter)) {
                        live_total -= 1;
                        if let Some(st) = spec.get_mut(&ev.exec) {
                            st.live.remove(&iter);
                        }
                        stats.instr_to_outcome_sum += ev.pos - seg.spawn_pos;
                        policy.on_thread_outcome(trace.exec(ev.exec).loop_id, true);
                        let seg_virtual = seg.spawn_time as i128 - ev.pos as i128;
                        let cur_virtual = cur.spawn_time as i128 - cur.start_pos as i128;
                        if seg_virtual <= cur_virtual {
                            stats.verified += 1;
                            cur = CurThread {
                                start_pos: ev.pos,
                                spawn_time: seg.spawn_time,
                                handoff_time: t,
                            };
                        } else {
                            stats.squashed_stale += 1;
                        }
                    }

                    // --- Speculation attempt.
                    let idle_now = idle(live_total);
                    let spawned = Self::attempt_spawn(
                        trace,
                        &policy,
                        &predictor,
                        &mut segments,
                        &mut spec,
                        &mut live_total,
                        &mut stats,
                        idle_now,
                        &cur,
                        ev.exec,
                        iter,
                        ev.pos,
                        t,
                    );

                    // --- STR(i): a newly detected execution that could
                    // not speculate counts against enclosing speculated
                    // loops; exceeding the limit squashes the outermost
                    // one and retries.
                    if spawned == 0 && iter == 2 {
                        if let Some(limit) = nesting_limit {
                            let mut victim: Option<ExecId> = None;
                            for &g in open_stack.iter() {
                                if g == ev.exec {
                                    continue;
                                }
                                if let Some(st) = spec.get_mut(&g) {
                                    if !st.live.is_empty() {
                                        st.nested_nonspec += 1;
                                        if st.nested_nonspec > limit && victim.is_none() {
                                            victim = Some(g);
                                        }
                                    }
                                }
                            }
                            if let Some(g) = victim {
                                let sacrificed = Self::squash_exec(
                                    &mut segments,
                                    &mut spec,
                                    &mut live_total,
                                    &mut stats,
                                    g,
                                    ev.pos,
                                    false,
                                );
                                // Policy squashes sacrifice *correct*
                                // speculation; they do not count against
                                // a loop's suitability.
                                let _ = sacrificed;
                                let idle_retry = idle(live_total);
                                let _ = Self::attempt_spawn(
                                    trace,
                                    &policy,
                                    &predictor,
                                    &mut segments,
                                    &mut spec,
                                    &mut live_total,
                                    &mut stats,
                                    idle_retry,
                                    &cur,
                                    ev.exec,
                                    iter,
                                    ev.pos,
                                    t,
                                );
                            }
                        }
                    }
                }
                TraceEventKind::ExecEnd => {
                    open_stack.retain(|&g| g != ev.exec);
                    let info_loop = trace.exec(ev.exec).loop_id;
                    let squashed = Self::squash_exec(
                        &mut segments,
                        &mut spec,
                        &mut live_total,
                        &mut stats,
                        ev.exec,
                        ev.pos,
                        true,
                    );
                    for _ in 0..squashed {
                        policy.on_thread_outcome(info_loop, false);
                    }
                    spec.remove(&ev.exec);
                    let info = trace.exec(ev.exec);
                    if info.closed {
                        predictor.record_execution(info.loop_id, info.total_iters);
                    }
                }
            }
        }

        let cycles = cur.time_at(trace.instructions);
        EngineReport {
            instructions: trace.instructions,
            cycles,
            spec: stats,
            policy: policy_name,
            tus: tus_label,
        }
    }

    /// Launches new speculative threads per the policy; returns how many.
    ///
    /// Iterations whose start the current thread's speculative run-ahead
    /// has already executed are not spawned — a TU pointed at work the
    /// non-speculative thread has already done contributes nothing (it
    /// would be discarded as stale at verification).
    #[allow(clippy::too_many_arguments)]
    fn attempt_spawn(
        trace: &AnnotatedTrace,
        policy: &P,
        predictor: &IterPredictor,
        segments: &mut HashMap<(ExecId, u32), Segment>,
        spec: &mut HashMap<ExecId, ExecSpec>,
        live_total: &mut u64,
        stats: &mut SpecStats,
        idle: u64,
        cur: &CurThread,
        exec: ExecId,
        iter: u32,
        pos: u64,
        t: u64,
    ) -> u64 {
        if idle == 0 {
            return 0;
        }
        let info = trace.exec(exec);
        let already = spec.get(&exec).map_or(0, |s| s.live.len()) as u32;
        let ctx = SpecContext {
            loop_id: info.loop_id,
            current_iter: iter,
            idle_tus: idle,
            already_speculated: already,
            predictor,
            actual_remaining: info.remaining_after(iter),
        };
        let n = policy.threads_to_spawn(&ctx).min(idle);
        if n == 0 {
            return 0;
        }
        // Self-paced position the current thread has reached by time t.
        let covered = cur.start_pos + (t - cur.spawn_time);
        let st = spec.entry(exec).or_default();
        let next = st.live.iter().next_back().copied().unwrap_or(iter) + 1;
        let mut spawned = 0u64;
        for j in next..next + n as u32 {
            if let Some(p) = info.iter_pos(j) {
                if p < covered {
                    continue; // already executed by the run-ahead
                }
            }
            segments.insert(
                (exec, j),
                Segment {
                    spawn_time: t,
                    spawn_pos: pos,
                },
            );
            st.live.insert(j);
            spawned += 1;
        }
        if spawned == 0 {
            return 0;
        }
        // Speculating resets the exec's STR(i) pressure counter.
        st.nested_nonspec = 0;
        *live_total += spawned;
        stats.spec_actions += 1;
        stats.threads_spawned += spawned;
        spawned
    }

    /// Squashes every live thread of `exec`, freeing its TUs.
    /// `misspec = true` for loop-end squashes (phantom iterations),
    /// `false` for STR(i) policy squashes (correct work sacrificed).
    fn squash_exec(
        segments: &mut HashMap<(ExecId, u32), Segment>,
        spec: &mut HashMap<ExecId, ExecSpec>,
        live_total: &mut u64,
        stats: &mut SpecStats,
        exec: ExecId,
        pos: u64,
        misspec: bool,
    ) -> u64 {
        let Some(st) = spec.get_mut(&exec) else {
            return 0;
        };
        let mut squashed = 0;
        for iter in std::mem::take(&mut st.live) {
            let seg = segments
                .remove(&(exec, iter))
                .expect("live set and segment map agree");
            *live_total -= 1;
            stats.instr_to_outcome_sum += pos - seg.spawn_pos;
            if misspec {
                stats.squashed_misspec += 1;
            } else {
                stats.squashed_policy += 1;
            }
            squashed += 1;
        }
        st.nested_nonspec = 0;
        squashed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{IdlePolicy, OraclePolicy, StrNestedPolicy, StrPolicy};
    use loopspec_asm::ProgramBuilder;
    use loopspec_core::EventCollector;
    use loopspec_cpu::{Cpu, RunLimits};

    fn trace_of(build: impl FnOnce(&mut ProgramBuilder)) -> AnnotatedTrace {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let p = b.finish().expect("assembles");
        let mut c = EventCollector::default();
        Cpu::new()
            .run(&p, &mut c, RunLimits::default())
            .expect("runs");
        let (events, n) = c.into_parts();
        AnnotatedTrace::build(&events, n)
    }

    #[test]
    fn sequential_trace_has_tpc_one() {
        let trace = trace_of(|b| b.work(50));
        let r = Engine::new(&trace, StrPolicy::new(), 4).run();
        assert_eq!(r.cycles, r.instructions);
        assert!((r.tpc() - 1.0).abs() < 1e-12);
        assert_eq!(r.spec.threads_spawned, 0);
    }

    #[test]
    fn ideal_oracle_matches_hand_analysis() {
        // Hand-built trace: 100 instructions, one 10-iteration loop with
        // iteration starts every 10 instructions from 10 to 90.
        use loopspec_core::{LoopEvent, LoopId};
        use loopspec_isa::Addr;
        let lid = LoopId(Addr::new(1));
        let mut ev = vec![LoopEvent::ExecutionStart {
            loop_id: lid,
            pos: 10,
            depth: 1,
        }];
        for k in 2..=10u32 {
            ev.push(LoopEvent::IterationStart {
                loop_id: lid,
                iter: k,
                pos: (k as u64 - 1) * 10,
            });
        }
        ev.push(LoopEvent::ExecutionEnd {
            loop_id: lid,
            iterations: 10,
            pos: 100,
        });
        let trace = AnnotatedTrace::build(&ev, 100);
        let r = Engine::unbounded(&trace, OraclePolicy::new()).run();
        // Critical path: 10 cycles to reach the loop detection point plus
        // 10 cycles for every thread to finish its 10-instruction
        // iteration — all iterations overlap.
        assert_eq!(r.cycles, 20);
        assert!((r.tpc() - 5.0).abs() < 1e-12);
        assert_eq!(r.spec.verified, 8); // iterations 3..=10
        assert_eq!(r.spec.squashed_misspec, 0);
    }

    #[test]
    fn two_tus_cap_tpc_at_two() {
        let trace = trace_of(|b| b.counted_loop(200, |b, _| b.work(30)));
        let r = Engine::new(&trace, IdlePolicy::new(), 2).run();
        assert!(r.tpc() > 1.4, "tpc = {}", r.tpc());
        assert!(r.tpc() <= 2.0 + 1e-9);
    }

    #[test]
    fn more_tus_do_not_hurt_a_simple_loop() {
        let trace = trace_of(|b| b.counted_loop(100, |b, _| b.work(25)));
        let r2 = Engine::new(&trace, StrPolicy::new(), 2).run();
        let r4 = Engine::new(&trace, StrPolicy::new(), 4).run();
        let r8 = Engine::new(&trace, StrPolicy::new(), 8).run();
        assert!(r4.tpc() >= r2.tpc() - 1e-9);
        assert!(r8.tpc() >= r4.tpc() - 1e-9);
        assert!(r8.tpc() > 3.0, "single hot loop should scale: {}", r8.tpc());
    }

    #[test]
    fn idle_policy_misspeculates_at_loop_ends() {
        // Two executions of the same loop: IDLE always grabs all TUs, so
        // it runs past the end of each execution.
        let trace = trace_of(|b| {
            b.counted_loop(2, |b, _| {
                b.counted_loop(20, |b, _| b.work(10));
            });
        });
        let r = Engine::new(&trace, IdlePolicy::new(), 8).run();
        assert!(
            r.spec.squashed_misspec > 0,
            "IDLE should overshoot: {:?}",
            r.spec
        );
    }

    #[test]
    fn str_avoids_misspeculation_on_regular_loops() {
        // Ten executions of the *same static loop*, reached through
        // straight-line calls (no enclosing loop to hoard TUs): after a
        // warm-up execution the stride predictor sizes bursts exactly,
        // while IDLE keeps grabbing TUs past each execution's end.
        let trace = trace_of(|b| {
            b.define_func("kernel", |b| {
                b.counted_loop(20, |b, _| b.work(10));
            });
            for _ in 0..10 {
                b.call_func("kernel");
            }
        });
        let idle = Engine::new(&trace, IdlePolicy::new(), 8).run();
        let strp = Engine::new(&trace, StrPolicy::new(), 8).run();
        assert!(
            strp.spec.squashed_misspec < idle.spec.squashed_misspec,
            "STR {:?} vs IDLE {:?}",
            strp.spec,
            idle.spec
        );
        assert!(strp.spec.hit_ratio_percent() > 90.0);
    }

    #[test]
    fn str_nested_squashes_outer_threads_for_inner_loops() {
        // An outer loop whose iterations each contain several sequential
        // inner loops: with few TUs the outer loop hoards them, and
        // STR(1) must squash it.
        let trace = trace_of(|b| {
            b.counted_loop(6, |b, _| {
                for _ in 0..3 {
                    b.counted_loop(12, |b, _| b.work(8));
                }
            });
        });
        let str_plain = Engine::new(&trace, StrPolicy::new(), 4).run();
        let str1 = Engine::new(&trace, StrNestedPolicy::new(1), 4).run();
        assert_eq!(str_plain.spec.squashed_policy, 0);
        assert!(
            str1.spec.squashed_policy > 0,
            "STR(1) must fire: {:?}",
            str1.spec
        );
    }

    #[test]
    fn report_bookkeeping_is_consistent() {
        let trace = trace_of(|b| {
            b.counted_loop(5, |b, _| {
                b.counted_loop(10, |b, _| b.work(5));
            });
        });
        let r = Engine::new(&trace, StrPolicy::new(), 4).run();
        assert_eq!(
            r.spec.threads_spawned,
            r.spec.resolved(),
            "every thread resolves by trace end"
        );
        assert!(r.cycles <= r.instructions);
        assert_eq!(r.policy, "STR");
        assert_eq!(r.tus, Some(4));
    }

    #[test]
    #[should_panic(expected = "num_tus must be in 2..=4096")]
    fn rejects_one_tu() {
        let trace = trace_of(|b| b.work(1));
        let _ = Engine::new(&trace, StrPolicy::new(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot run with unbounded TUs")]
    fn rejects_unbounded_idle() {
        let trace = trace_of(|b| b.work(1));
        let _ = Engine::unbounded(&trace, IdlePolicy::new());
    }

    #[test]
    fn empty_trace_reports_tpc_one() {
        let trace = AnnotatedTrace::build(&[], 0);
        let r = Engine::new(&trace, StrPolicy::new(), 4).run();
        assert_eq!(r.cycles, 0);
        assert_eq!(r.tpc(), 1.0);
    }
}
