//! Speculation statistics (the paper's Table 2 columns).

/// Counters describing the speculation activity of one engine run.
///
/// Mirrors Table 2 of the paper: number of control speculations, threads
/// per speculation, hit ratio, and instructions from speculation to
/// verification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Control speculations performed (spawn actions launching ≥ 1
    /// thread) — the `#spec.` column.
    pub spec_actions: u64,
    /// Total speculative threads launched.
    pub threads_spawned: u64,
    /// Threads verified correct (became non-speculative).
    pub verified: u64,
    /// Threads squashed because their iteration never existed (control
    /// misspeculation at loop-execution end).
    pub squashed_misspec: u64,
    /// Threads squashed by the STR(i) nesting rule (correct speculations
    /// sacrificed to free TUs for inner loops).
    pub squashed_policy: u64,
    /// Threads discarded at verification because the non-speculative
    /// thread's speculative run-ahead had already executed their work
    /// (control-correct but redundant; they contribute no parallelism).
    pub squashed_stale: u64,
    /// Σ committed instructions between each thread's spawn and its
    /// verification or squash — numerator of `#instr. to verif`.
    pub instr_to_outcome_sum: u64,
}

impl SpecStats {
    /// Threads whose outcome is known (verified + squashed).
    pub fn resolved(&self) -> u64 {
        self.verified + self.squashed_misspec + self.squashed_policy + self.squashed_stale
    }

    /// Average threads launched per speculation action
    /// (`#threads/spec.`).
    pub fn threads_per_spec(&self) -> f64 {
        if self.spec_actions == 0 {
            0.0
        } else {
            self.threads_spawned as f64 / self.spec_actions as f64
        }
    }

    /// Fraction of launched threads verified correct (`hit ratio`, as a
    /// percentage).
    pub fn hit_ratio_percent(&self) -> f64 {
        if self.resolved() == 0 {
            0.0
        } else {
            100.0 * self.verified as f64 / self.resolved() as f64
        }
    }

    /// Average committed instructions from speculation to verification /
    /// squash (`#instr. to verif`).
    pub fn instr_to_verif(&self) -> f64 {
        if self.resolved() == 0 {
            0.0
        } else {
            self.instr_to_outcome_sum as f64 / self.resolved() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let s = SpecStats {
            spec_actions: 4,
            threads_spawned: 10,
            verified: 8,
            squashed_misspec: 1,
            squashed_policy: 0,
            squashed_stale: 1,
            instr_to_outcome_sum: 1000,
        };
        assert_eq!(s.resolved(), 10);
        assert!((s.threads_per_spec() - 2.5).abs() < 1e-12);
        assert!((s.hit_ratio_percent() - 80.0).abs() < 1e-12);
        assert!((s.instr_to_verif() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = SpecStats::default();
        assert_eq!(s.threads_per_spec(), 0.0);
        assert_eq!(s.hit_ratio_percent(), 0.0);
        assert_eq!(s.instr_to_verif(), 0.0);
    }
}
