//! The infinite-TU potential study (paper Figure 5).

use crate::annotate::AnnotatedTrace;
use crate::engine::Engine;
use crate::policy::OraclePolicy;

/// Result of the ideal-machine experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealReport {
    /// Committed instructions.
    pub instructions: u64,
    /// Critical-path cycles with every future iteration speculated at
    /// loop-detection time.
    pub cycles: u64,
    /// Threads per cycle.
    pub tpc: f64,
}

/// Computes the TPC an ideal machine with infinite thread units achieves
/// when every detected loop execution speculates all of its remaining
/// iterations (paper Figure 5: "the potential TLP that can be exploited
/// if loops are automatically detected is very high").
///
/// ```
/// use loopspec_asm::ProgramBuilder;
/// use loopspec_cpu::{Cpu, RunLimits};
/// use loopspec_core::EventCollector;
/// use loopspec_mt::{ideal_tpc, AnnotatedTrace};
///
/// let mut b = ProgramBuilder::new();
/// b.counted_loop(100, |b, _| b.work(20));
/// let program = b.finish()?;
/// let mut c = EventCollector::default();
/// Cpu::new().run(&program, &mut c, RunLimits::default())?;
/// let (events, n) = c.into_parts();
/// let trace = AnnotatedTrace::build(&events, n);
///
/// let ideal = ideal_tpc(&trace);
/// assert!(ideal.tpc > 10.0, "a 100-iteration loop has huge potential TLP");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn ideal_tpc(trace: &AnnotatedTrace) -> IdealReport {
    let report = Engine::unbounded(trace, OraclePolicy::new()).run();
    IdealReport {
        instructions: report.instructions,
        cycles: report.cycles,
        tpc: report.tpc(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_asm::ProgramBuilder;
    use loopspec_core::EventCollector;
    use loopspec_cpu::{Cpu, RunLimits};

    fn trace_of(build: impl FnOnce(&mut ProgramBuilder)) -> AnnotatedTrace {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let p = b.finish().unwrap();
        let mut c = EventCollector::default();
        Cpu::new().run(&p, &mut c, RunLimits::default()).unwrap();
        let (events, n) = c.into_parts();
        AnnotatedTrace::build(&events, n)
    }

    #[test]
    fn ideal_tpc_scales_with_iteration_count() {
        let small = ideal_tpc(&trace_of(|b| b.counted_loop(10, |b, _| b.work(20))));
        let large = ideal_tpc(&trace_of(|b| b.counted_loop(1000, |b, _| b.work(20))));
        assert!(large.tpc > small.tpc * 10.0);
    }

    #[test]
    fn nested_loops_multiply_potential() {
        let flat = ideal_tpc(&trace_of(|b| b.counted_loop(30, |b, _| b.work(20))));
        let nested = ideal_tpc(&trace_of(|b| {
            b.counted_loop(30, |b, _| {
                b.counted_loop(30, |b, _| b.work(20));
            })
        }));
        assert!(nested.tpc > flat.tpc, "outer iterations also overlap");
    }

    #[test]
    fn no_loops_means_no_potential() {
        let r = ideal_tpc(&trace_of(|b| b.work(100)));
        assert!((r.tpc - 1.0).abs() < 1e-12);
    }
}
