//! The infinite-TU potential study (paper Figure 5).
//!
//! The production entry point is the **two-phase streaming** pair
//! [`ideal_tpc_streaming`] / [`ideal_tpc_with_feed`]: a forward pass
//! records per-execution iteration counts
//! ([`IterationCountLog`](crate::IterationCountLog)), and a second
//! streaming pass consumes them through an unbounded-TU oracle
//! [`StreamEngine`](crate::StreamEngine). The materialized
//! [`ideal_tpc`] remains as the legacy reference the equivalence tests
//! cross-check against.

use loopspec_core::{LoopEvent, LoopEventSink};

use crate::annotate::AnnotatedTrace;
use crate::engine::Engine;
use crate::oracle::{IterationCountLog, OracleFeed};
use crate::policy::OraclePolicy;
use crate::stream::StreamEngine;

/// Result of the ideal-machine experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealReport {
    /// Committed instructions.
    pub instructions: u64,
    /// Critical-path cycles with every future iteration speculated at
    /// loop-detection time.
    pub cycles: u64,
    /// Threads per cycle.
    pub tpc: f64,
}

impl From<crate::engine::EngineReport> for IdealReport {
    fn from(report: crate::engine::EngineReport) -> Self {
        IdealReport {
            instructions: report.instructions,
            cycles: report.cycles,
            tpc: report.tpc(),
        }
    }
}

/// Computes the TPC an ideal machine with infinite thread units achieves
/// when every detected loop execution speculates all of its remaining
/// iterations (paper Figure 5) — **legacy materialized path**: replays a
/// prebuilt [`AnnotatedTrace`] through the batch engine. Kept as the
/// cross-check reference for the streaming pair below (the
/// `oracle_equivalence` suite proves them bit-identical); production
/// flows use [`ideal_tpc_streaming`].
///
/// ```
/// use loopspec_asm::ProgramBuilder;
/// use loopspec_cpu::{Cpu, RunLimits};
/// use loopspec_core::EventCollector;
/// use loopspec_mt::{ideal_tpc, AnnotatedTrace};
///
/// let mut b = ProgramBuilder::new();
/// b.counted_loop(100, |b, _| b.work(20));
/// let program = b.finish()?;
/// let mut c = EventCollector::default();
/// Cpu::new().run(&program, &mut c, RunLimits::default())?;
/// let (events, n) = c.into_parts();
/// let trace = AnnotatedTrace::build(&events, n);
///
/// let ideal = ideal_tpc(&trace);
/// assert!(ideal.tpc > 10.0, "a 100-iteration loop has huge potential TLP");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn ideal_tpc(trace: &AnnotatedTrace) -> IdealReport {
    Engine::unbounded(trace, OraclePolicy::new()).run().into()
}

/// The two-phase streaming Figure 5: phase 1 streams `events` through an
/// [`IterationCountLog`](crate::IterationCountLog) (O(executions)
/// state), phase 2 streams them again through an unbounded-TU oracle
/// [`StreamEngine`](crate::StreamEngine) fed the recorded counts. No
/// [`AnnotatedTrace`] is ever materialized; the result is bit-identical
/// to [`ideal_tpc`].
///
/// ```
/// use loopspec_asm::ProgramBuilder;
/// use loopspec_cpu::{Cpu, RunLimits};
/// use loopspec_core::EventCollector;
/// use loopspec_mt::ideal_tpc_streaming;
///
/// let mut b = ProgramBuilder::new();
/// b.counted_loop(100, |b, _| b.work(20));
/// let program = b.finish()?;
/// let mut c = EventCollector::default();
/// Cpu::new().run(&program, &mut c, RunLimits::default())?;
/// let (events, n) = c.into_parts();
///
/// let ideal = ideal_tpc_streaming(&events, n);
/// assert!(ideal.tpc > 10.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn ideal_tpc_streaming(events: &[LoopEvent], instructions: u64) -> IdealReport {
    let mut log = IterationCountLog::new();
    log.on_loop_events(events);
    log.on_stream_end(instructions);
    ideal_tpc_with_feed(events, instructions, &log.into_feed())
}

/// The event-stream split a fractional cut of a run studies (the
/// paper's Figure 5 "reduced part"): returns the index of the first
/// event past the cut and the cut itself in committed instructions,
/// so `&events[..split]` with `cut` instructions is the prefix run.
/// Events are emitted by a single forward pass, so positions are
/// non-decreasing and the split is a binary search. Every consumer of
/// the prefix study (the figure harness, the oracle benches, the
/// equivalence suite) must cut through this one function so the rule
/// cannot silently diverge between them.
///
/// # Panics
///
/// Panics unless `0.0 < fraction <= 1.0` — a typo'd fraction must not
/// produce a plausible-looking but wrong "reduced part".
pub fn prefix_split(events: &[LoopEvent], instructions: u64, fraction: f64) -> (usize, u64) {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "bad prefix fraction {fraction}"
    );
    let cut = (instructions as f64 * fraction) as u64;
    (events.partition_point(|e| e.pos() <= cut), cut)
}

/// Phase 2 of [`ideal_tpc_streaming`] alone, for callers that already
/// hold a phase-1 [`OracleFeed`] of the same stream (e.g. a count log
/// that rode the main session's fan-out).
pub fn ideal_tpc_with_feed(
    events: &[LoopEvent],
    instructions: u64,
    feed: &OracleFeed,
) -> IdealReport {
    let mut engine = StreamEngine::unbounded_with_feed(OraclePolicy::new(), feed.clone())
        .expect("the oracle supports unbounded TUs");
    engine.on_loop_events(events);
    engine.on_stream_end(instructions);
    engine.into_report().into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_asm::ProgramBuilder;
    use loopspec_core::EventCollector;
    use loopspec_cpu::{Cpu, RunLimits};

    fn events_of(build: impl FnOnce(&mut ProgramBuilder)) -> (Vec<LoopEvent>, u64) {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let p = b.finish().unwrap();
        let mut c = EventCollector::default();
        Cpu::new().run(&p, &mut c, RunLimits::default()).unwrap();
        c.into_parts()
    }

    fn trace_of(build: impl FnOnce(&mut ProgramBuilder)) -> AnnotatedTrace {
        let (events, n) = events_of(build);
        AnnotatedTrace::build(&events, n)
    }

    #[test]
    fn ideal_tpc_scales_with_iteration_count() {
        let small = ideal_tpc(&trace_of(|b| b.counted_loop(10, |b, _| b.work(20))));
        let large = ideal_tpc(&trace_of(|b| b.counted_loop(1000, |b, _| b.work(20))));
        assert!(large.tpc > small.tpc * 10.0);
    }

    #[test]
    fn nested_loops_multiply_potential() {
        let flat = ideal_tpc(&trace_of(|b| b.counted_loop(30, |b, _| b.work(20))));
        let nested = ideal_tpc(&trace_of(|b| {
            b.counted_loop(30, |b, _| {
                b.counted_loop(30, |b, _| b.work(20));
            })
        }));
        assert!(nested.tpc > flat.tpc, "outer iterations also overlap");
    }

    #[test]
    fn no_loops_means_no_potential() {
        let r = ideal_tpc(&trace_of(|b| b.work(100)));
        assert!((r.tpc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_pair_matches_the_materialized_reference() {
        let (events, n) = events_of(|b| {
            b.counted_loop(12, |b, _| {
                b.counted_loop(25, |b, _| b.work(9));
            })
        });
        let legacy = ideal_tpc(&AnnotatedTrace::build(&events, n));
        let streaming = ideal_tpc_streaming(&events, n);
        assert_eq!(streaming, legacy);

        // The phase-2-only entry point agrees when handed the phase-1
        // feed explicitly.
        let mut log = IterationCountLog::new();
        log.on_loop_events(&events);
        log.on_stream_end(n);
        assert_eq!(ideal_tpc_with_feed(&events, n, &log.into_feed()), legacy);
    }
}
