//! Engine scenarios on assembled programs: predictor warm-up, STR(i)
//! rescue of inner loops, the suitability filter, and stale-thread
//! handling.

use loopspec_asm::ProgramBuilder;
use loopspec_core::EventCollector;
use loopspec_cpu::{Cpu, RunLimits};
use loopspec_mt::{
    AnnotatedTrace, Engine, IdlePolicy, StrNestedPolicy, StrPolicy, SuitabilityFilter,
};

fn trace_of(build: impl FnOnce(&mut ProgramBuilder)) -> AnnotatedTrace {
    let mut b = ProgramBuilder::new();
    build(&mut b);
    let p = b.finish().expect("assembles");
    let mut c = EventCollector::default();
    let summary = Cpu::new()
        .run(&p, &mut c, RunLimits::default())
        .expect("runs");
    assert!(summary.halted());
    let (events, n) = c.into_parts();
    AnnotatedTrace::build(&events, n)
}

/// Repeated executions of one fixed-trip loop via straight-line calls —
/// the cleanest predictor-training scenario.
fn repeated_kernel(reps: usize, trips: i64) -> AnnotatedTrace {
    trace_of(move |b| {
        b.define_func("kernel", move |b| {
            b.counted_loop(trips, |b, _| b.work(10));
        });
        for _ in 0..reps {
            b.call_func("kernel");
        }
    })
}

#[test]
fn predictor_eliminates_phantoms_after_warmup() {
    let trace = repeated_kernel(10, 20);
    let idle = Engine::new(&trace, IdlePolicy::new(), 8).run();
    let strp = Engine::new(&trace, StrPolicy::new(), 8).run();
    // IDLE overshoots every execution's end; STR only the first
    // (untrained) one.
    assert!(idle.spec.squashed_misspec >= 9 * 2);
    assert!(
        strp.spec.squashed_misspec < idle.spec.squashed_misspec / 2,
        "STR {} vs IDLE {}",
        strp.spec.squashed_misspec,
        idle.spec.squashed_misspec
    );
}

#[test]
fn str_nested_rescues_inner_loops_from_a_hoarding_outer() {
    // One long outer loop with three sequential inner loops per
    // iteration: with 4 TUs the outer hoards everything; STR(1) frees
    // TUs for inner loops after one non-speculated inner execution.
    let build = |b: &mut ProgramBuilder| {
        b.counted_loop(8, |b, _| {
            for _ in 0..3 {
                b.counted_loop(15, |b, _| b.work(6));
            }
        });
    };
    let trace = trace_of(build);
    let plain = Engine::new(&trace, StrPolicy::new(), 4).run();
    let nested = Engine::new(&trace, StrNestedPolicy::new(1), 4).run();
    assert_eq!(plain.spec.squashed_policy, 0);
    assert!(nested.spec.squashed_policy > 0, "{:?}", nested.spec);
    // The inner loops got speculation opportunities under STR(1): more
    // speculation actions happened overall.
    assert!(
        nested.spec.spec_actions > plain.spec.spec_actions,
        "STR(1) {} vs STR {}",
        nested.spec.spec_actions,
        plain.spec.spec_actions
    );
}

#[test]
fn suitability_filter_stops_chronic_misspeculators() {
    // A loop whose trip count is erratic (driven by the guest LCG): STR
    // keeps misspeculating; the filter benches it after enough misses.
    let build = |b: &mut ProgramBuilder| {
        b.define_func("erratic", |b| {
            let n = b.alloc_reg();
            b.rng_below(n, 12);
            b.addi(n, n, 1);
            b.counted_loop(n, |b, _| b.work(6));
            b.free_reg(n);
        });
        for _ in 0..40 {
            b.call_func("erratic");
        }
    };
    let trace = trace_of(build);
    let plain = Engine::new(&trace, StrPolicy::new(), 4).run();
    let filtered = Engine::new(&trace, SuitabilityFilter::new(StrPolicy::new(), 12, 0.3), 4).run();
    assert!(
        filtered.spec.squashed_misspec < plain.spec.squashed_misspec,
        "filter {:?} vs plain {:?}",
        filtered.spec,
        plain.spec
    );
    assert!(filtered.spec.threads_spawned < plain.spec.threads_spawned);
    assert_eq!(filtered.policy, "STR+FILT");
}

#[test]
fn stale_threads_are_counted_not_handed_off() {
    // Nested fixed loops where the outer is speculated far ahead: inner
    // iterations detected in a run-ahead backlog may produce stale
    // segments in corner cases; the engine must never lose cycles to
    // them (TPC with speculation >= 1 and <= ideal is covered elsewhere;
    // here we check the accounting field is wired).
    let trace = trace_of(|b| {
        b.counted_loop(12, |b, _| {
            b.counted_loop(12, |b, _| b.work(8));
        });
    });
    let r = Engine::new(&trace, IdlePolicy::new(), 16).run();
    assert_eq!(
        r.spec.threads_spawned,
        r.spec.verified + r.spec.squashed_misspec + r.spec.squashed_policy + r.spec.squashed_stale,
        "{:?}",
        r.spec
    );
}

#[test]
fn prefix_traces_report_lower_or_equal_instructions() {
    let trace = repeated_kernel(6, 30);
    let r_full = Engine::new(&trace, StrPolicy::new(), 4).run();
    // Rebuild a half trace through the public API.
    let half_events: Vec<_> = trace.events.clone();
    let _ = half_events; // events themselves are not re-consumable here;
                         // the Figure 5 prefix path (two-phase oracle
                         // over the event prefix) is exercised in
                         // loopspec-bench tests.
    assert!(r_full.instructions == trace.instructions);
}

#[test]
fn engine_handles_truncated_traces() {
    // A trace cut mid-execution (no halt): open executions close at the
    // end and the engine still satisfies its conservation laws.
    let mut b = ProgramBuilder::new();
    b.loop_forever(|b| b.work(5));
    let p = b.finish().unwrap();
    let mut c = EventCollector::default();
    let summary = Cpu::new()
        .run(&p, &mut c, RunLimits::with_fuel(5_000))
        .unwrap();
    assert!(!summary.halted());
    let (events, n) = c.into_parts();
    let trace = AnnotatedTrace::build(&events, n);
    assert!(!trace.execs.is_empty());
    assert!(!trace.execs[0].closed);
    let r = Engine::new(&trace, StrPolicy::new(), 4).run();
    assert_eq!(r.spec.threads_spawned, r.spec.resolved());
    assert!(r.cycles <= n);
}

#[test]
fn sixteen_tus_saturate_a_sixteen_iteration_loop() {
    // A loop with exactly 17 iterations and uniform bodies: 16 TUs can
    // overlap essentially all of it after detection.
    let trace = trace_of(|b| {
        b.define_func("k", |b| {
            b.counted_loop(17, |b, _| b.work(50));
        });
        for _ in 0..6 {
            b.call_func("k");
        }
    });
    let r = Engine::new(&trace, StrPolicy::new(), 16).run();
    assert!(r.tpc() > 5.0, "tpc = {}", r.tpc());
}

#[test]
fn policies_report_their_names() {
    let trace = repeated_kernel(2, 5);
    assert_eq!(
        Engine::new(&trace, IdlePolicy::new(), 2).run().policy,
        "IDLE"
    );
    assert_eq!(Engine::new(&trace, StrPolicy::new(), 2).run().policy, "STR");
    assert_eq!(
        Engine::new(&trace, StrNestedPolicy::new(2), 2).run().policy,
        "STR(2)"
    );
}
