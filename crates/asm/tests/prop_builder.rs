//! Property-style tests for the assembler and builder: any structured
//! composition the builder accepts must assemble into a valid program
//! (all control-transfer targets in range, exactly one halt boundary,
//! balanced prologues), and assembly must be deterministic.
//!
//! The original suite used `proptest`; the build environment is offline,
//! so the same generators run off a deterministic xorshift RNG.

use loopspec_asm::{Program, ProgramBuilder};
use loopspec_isa::{Cond, ControlKind, Instruction, Reg};
use loopspec_testutil::Rng;

/// A miniature structure language (distinct from the cross-crate test's:
/// this one also exercises functions and switch tables).
#[derive(Debug, Clone)]
enum Piece {
    Work(u8),
    Fwork(u8),
    Loop(u8, Vec<Piece>),
    While(u8, Vec<Piece>),
    If(Vec<Piece>),
    Switch(u8),
    CallLeaf,
}

fn arb_piece(r: &mut Rng, depth: u32) -> Piece {
    let leafy = depth >= 3 || r.below(2) == 0;
    if leafy {
        match r.below(4) {
            0 => Piece::Work(r.range(1, 10) as u8),
            1 => Piece::Fwork(r.range(1, 6) as u8),
            2 => Piece::Switch(r.range(1, 5) as u8),
            _ => Piece::CallLeaf,
        }
    } else {
        let body = |r: &mut Rng| {
            (0..r.range(1, 3))
                .map(|_| arb_piece(r, depth + 1))
                .collect::<Vec<_>>()
        };
        match r.below(3) {
            0 => Piece::Loop(r.below(6) as u8, body(r)),
            1 => Piece::While(r.range(1, 6) as u8, body(r)),
            _ => Piece::If(body(r)),
        }
    }
}

fn arb_pieces(r: &mut Rng, max: u64) -> Vec<Piece> {
    (0..r.range(1, max)).map(|_| arb_piece(r, 0)).collect()
}

fn emit(b: &mut ProgramBuilder, pieces: &[Piece]) {
    for p in pieces {
        match p {
            Piece::Work(n) => b.work(*n as u32),
            Piece::Fwork(n) => b.fwork(*n as u32),
            Piece::Loop(n, body) => b.counted_loop(*n as i64, |b, _| emit(b, body)),
            Piece::While(n, body) => {
                let c = b.alloc_reg();
                b.li(c, *n as i64);
                b.while_loop(
                    |_| (Cond::GtS, c, Reg::R0),
                    |b| {
                        b.addi(c, c, -1);
                        emit(b, body);
                    },
                );
                b.free_reg(c);
            }
            Piece::If(body) => {
                let r = b.alloc_reg();
                b.rng_below(r, 2);
                b.if_then(Cond::Eq, r, Reg::R0, |b| emit(b, body));
                b.free_reg(r);
            }
            Piece::Switch(arms) => {
                let r = b.alloc_reg();
                b.rng_below(r, *arms as i32);
                b.switch_table(r, *arms as usize, |b, k| b.work(k as u32 + 1));
                b.free_reg(r);
            }
            Piece::CallLeaf => b.call_func("leaf"),
        }
    }
}

fn build(pieces: &[Piece]) -> Program {
    let mut b = ProgramBuilder::new();
    b.define_func("leaf", |b| b.work(3));
    emit(&mut b, pieces);
    b.finish().expect("structured programs always assemble")
}

#[test]
fn structured_programs_assemble_with_valid_targets() {
    for seed in 0..64u64 {
        let p = build(&arb_pieces(&mut Rng::new(seed), 4));
        // Program::new validated static targets already; re-check here
        // against the public accessors for defence in depth.
        let len = p.len() as u32;
        for (i, instr) in p.code().iter().enumerate() {
            match instr.control_kind() {
                ControlKind::CondBranch { target }
                | ControlKind::Jump { target }
                | ControlKind::Call { target } => {
                    assert!(
                        target.index() < len,
                        "seed {seed}: instr {i} targets {target}"
                    );
                }
                _ => {}
            }
        }
    }
}

#[test]
fn assembly_is_deterministic() {
    for seed in 0..64u64 {
        let pieces = arb_pieces(&mut Rng::new(seed), 4);
        let a = build(&pieces);
        let b = build(&pieces);
        assert_eq!(a.code().len(), b.code().len(), "seed {seed}");
        assert!(a
            .code()
            .iter()
            .zip(b.code().iter())
            .all(|(x, y)| x.encode() == y.encode()));
    }
}

#[test]
fn exactly_one_halt_separates_main_from_functions() {
    for seed in 0..64u64 {
        let p = build(&arb_pieces(&mut Rng::new(seed), 4));
        let halts = p
            .code()
            .iter()
            .filter(|i| matches!(i, Instruction::Halt))
            .count();
        assert_eq!(halts, 1, "seed {seed}");
        // Everything after the halt belongs to functions: the leaf symbol
        // must point past it.
        let halt_at = p
            .code()
            .iter()
            .position(|i| matches!(i, Instruction::Halt))
            .unwrap();
        let leaf = p.symbol("leaf").unwrap();
        assert!((leaf.index() as usize) > halt_at, "seed {seed}");
    }
}

#[test]
fn encodings_round_trip_for_whole_programs() {
    for seed in 0..32u64 {
        let p = build(&arb_pieces(&mut Rng::new(seed), 3));
        for instr in p.code() {
            let back = Instruction::decode(instr.encode()).expect("assembled code decodes");
            assert_eq!(back.encode(), instr.encode());
        }
    }
}

#[test]
fn register_pool_is_balanced_after_any_structure() {
    for seed in 0..64u64 {
        // After emitting arbitrary structures, the builder must have all
        // main-pool registers free again: allocating all 12 succeeds.
        let mut b = ProgramBuilder::new();
        b.define_func("leaf", |b| b.work(3));
        emit(&mut b, &arb_pieces(&mut Rng::new(seed), 4));
        let regs: Vec<Reg> = (0..12).map(|_| b.alloc_reg()).collect();
        assert_eq!(regs.len(), 12, "seed {seed}");
    }
}
