//! Property tests for the assembler and builder: any structured
//! composition the builder accepts must assemble into a valid program
//! (all control-transfer targets in range, exactly one halt boundary,
//! balanced prologues), and assembly must be deterministic.

use loopspec_asm::{Program, ProgramBuilder};
use loopspec_isa::{Cond, ControlKind, Instruction, Reg};
use proptest::prelude::*;

/// A miniature structure language (distinct from the cross-crate test's:
/// this one also exercises functions and switch tables).
#[derive(Debug, Clone)]
enum Piece {
    Work(u8),
    Fwork(u8),
    Loop(u8, Vec<Piece>),
    While(u8, Vec<Piece>),
    If(Vec<Piece>),
    Switch(u8),
    CallLeaf,
}

fn arb_piece() -> impl Strategy<Value = Piece> {
    let leaf = prop_oneof![
        (1u8..10).prop_map(Piece::Work),
        (1u8..6).prop_map(Piece::Fwork),
        (1u8..5).prop_map(Piece::Switch),
        Just(Piece::CallLeaf),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            (0u8..6, prop::collection::vec(inner.clone(), 1..3))
                .prop_map(|(n, b)| Piece::Loop(n, b)),
            (1u8..6, prop::collection::vec(inner.clone(), 1..3))
                .prop_map(|(n, b)| Piece::While(n, b)),
            prop::collection::vec(inner, 1..3).prop_map(Piece::If),
        ]
    })
}

fn emit(b: &mut ProgramBuilder, pieces: &[Piece]) {
    for p in pieces {
        match p {
            Piece::Work(n) => b.work(*n as u32),
            Piece::Fwork(n) => b.fwork(*n as u32),
            Piece::Loop(n, body) => b.counted_loop(*n as i64, |b, _| emit(b, body)),
            Piece::While(n, body) => {
                let c = b.alloc_reg();
                b.li(c, *n as i64);
                b.while_loop(
                    |_| (Cond::GtS, c, Reg::R0),
                    |b| {
                        b.addi(c, c, -1);
                        emit(b, body);
                    },
                );
                b.free_reg(c);
            }
            Piece::If(body) => {
                let r = b.alloc_reg();
                b.rng_below(r, 2);
                b.if_then(Cond::Eq, r, Reg::R0, |b| emit(b, body));
                b.free_reg(r);
            }
            Piece::Switch(arms) => {
                let r = b.alloc_reg();
                b.rng_below(r, *arms as i32);
                b.switch_table(r, *arms as usize, |b, k| b.work(k as u32 + 1));
                b.free_reg(r);
            }
            Piece::CallLeaf => b.call_func("leaf"),
        }
    }
}

fn build(pieces: &[Piece]) -> Program {
    let mut b = ProgramBuilder::new();
    b.define_func("leaf", |b| b.work(3));
    emit(&mut b, pieces);
    b.finish().expect("structured programs always assemble")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn structured_programs_assemble_with_valid_targets(pieces in prop::collection::vec(arb_piece(), 1..4)) {
        let p = build(&pieces);
        // Program::new validated static targets already; re-check here
        // against the public accessors for defence in depth.
        let len = p.len() as u32;
        for (i, instr) in p.code().iter().enumerate() {
            match instr.control_kind() {
                ControlKind::CondBranch { target }
                | ControlKind::Jump { target }
                | ControlKind::Call { target } => {
                    prop_assert!(target.index() < len, "instr {i} targets {target}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn assembly_is_deterministic(pieces in prop::collection::vec(arb_piece(), 1..4)) {
        let a = build(&pieces);
        let b = build(&pieces);
        prop_assert_eq!(a.code().len(), b.code().len());
        prop_assert!(a.code().iter().zip(b.code().iter()).all(|(x, y)| x.encode() == y.encode()));
    }

    #[test]
    fn exactly_one_halt_separates_main_from_functions(pieces in prop::collection::vec(arb_piece(), 1..4)) {
        let p = build(&pieces);
        let halts = p.code().iter().filter(|i| matches!(i, Instruction::Halt)).count();
        prop_assert_eq!(halts, 1);
        // Everything after the halt belongs to functions: the leaf symbol
        // must point past it.
        let halt_at = p.code().iter().position(|i| matches!(i, Instruction::Halt)).unwrap();
        let leaf = p.symbol("leaf").unwrap();
        prop_assert!((leaf.index() as usize) > halt_at);
    }

    #[test]
    fn encodings_round_trip_for_whole_programs(pieces in prop::collection::vec(arb_piece(), 1..3)) {
        let p = build(&pieces);
        for instr in p.code() {
            let back = Instruction::decode(instr.encode()).expect("assembled code decodes");
            prop_assert_eq!(back.encode(), instr.encode());
        }
    }

    #[test]
    fn register_pool_is_balanced_after_any_structure(pieces in prop::collection::vec(arb_piece(), 1..4)) {
        // After emitting arbitrary structures, the builder must have all
        // main-pool registers free again: allocating all 12 succeeds.
        let mut b = ProgramBuilder::new();
        b.define_func("leaf", |b| b.work(3));
        emit(&mut b, &pieces);
        let regs: Vec<Reg> = (0..12).map(|_| b.alloc_reg()).collect();
        prop_assert_eq!(regs.len(), 12);
    }
}
