//! The label-resolving assembler core.

use std::collections::BTreeMap;

use loopspec_isa::{Addr, Cond, Instruction, Reg};

use crate::{AsmError, Program};

/// Handle to an assembler label: a code position that may be referenced
/// before it is bound.
///
/// Created by [`Assembler::new_label`], bound by [`Assembler::bind`], and
/// consumed by the control-flow emitters ([`Assembler::branch`],
/// [`Assembler::jump`], [`Assembler::call`],
/// [`Assembler::load_label_addr`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelId(u32);

/// Which field of a placeholder instruction a fixup patches.
#[derive(Debug, Clone, Copy)]
enum FixKind {
    /// `Branch`/`Jump`/`Call` target field.
    Target,
    /// `LoadImm` immediate holding a code address.
    AddrImm,
}

#[derive(Debug)]
struct Fixup {
    at: usize,
    label: LabelId,
    kind: FixKind,
}

/// A two-pass assembler: emit instructions freely, referencing labels that
/// are bound later; [`Assembler::finish`] patches every reference.
///
/// ```
/// use loopspec_asm::Assembler;
/// use loopspec_isa::{Cond, Instruction, Reg, AluOp};
///
/// let mut a = Assembler::new();
/// let top = a.new_label();
/// a.bind(top).unwrap();
/// a.emit(Instruction::AluImm { op: AluOp::Add, rd: Reg::R1, ra: Reg::R1, imm: 1 });
/// a.branch(Cond::LtS, Reg::R1, Reg::R2, top); // backward branch to `top`
/// a.emit(Instruction::Halt);
/// let program = a.finish().unwrap();
/// assert_eq!(program.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    code: Vec<Instruction>,
    labels: Vec<Option<Addr>>,
    fixups: Vec<Fixup>,
    symbols: BTreeMap<String, Addr>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The address of the next instruction to be emitted.
    #[inline]
    pub fn here(&self) -> Addr {
        Addr::new(self.code.len() as u32)
    }

    /// Appends an instruction and returns its address.
    pub fn emit(&mut self, instr: Instruction) -> Addr {
        let at = self.here();
        self.code.push(instr);
        at
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> LabelId {
        let id = LabelId(self.labels.len() as u32);
        self.labels.push(None);
        id
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DoublyBoundLabel`] if the label was already
    /// bound.
    pub fn bind(&mut self, label: LabelId) -> Result<(), AsmError> {
        let slot = &mut self.labels[label.0 as usize];
        if slot.is_some() {
            return Err(AsmError::DoublyBoundLabel { label: label.0 });
        }
        *slot = Some(Addr::new(self.code.len() as u32));
        Ok(())
    }

    /// Returns the bound address of a label, if bound.
    pub fn address_of(&self, label: LabelId) -> Option<Addr> {
        self.labels[label.0 as usize]
    }

    /// Convenience: creates a label already bound to the current position.
    pub fn label_here(&mut self) -> LabelId {
        let l = self.new_label();
        self.bind(l).expect("fresh label cannot be double-bound");
        l
    }

    /// Emits a conditional branch to `label` (patched at finish).
    pub fn branch(&mut self, cond: Cond, ra: Reg, rb: Reg, label: LabelId) -> Addr {
        let at = self.emit(Instruction::Branch {
            cond,
            ra,
            rb,
            target: Addr::ZERO,
        });
        self.fixups.push(Fixup {
            at: at.index() as usize,
            label,
            kind: FixKind::Target,
        });
        at
    }

    /// Emits an unconditional jump to `label` (patched at finish).
    pub fn jump(&mut self, label: LabelId) -> Addr {
        let at = self.emit(Instruction::Jump { target: Addr::ZERO });
        self.fixups.push(Fixup {
            at: at.index() as usize,
            label,
            kind: FixKind::Target,
        });
        at
    }

    /// Emits a call to `label` with link register `link` (patched at
    /// finish).
    pub fn call(&mut self, label: LabelId, link: Reg) -> Addr {
        let at = self.emit(Instruction::Call {
            target: Addr::ZERO,
            link,
        });
        self.fixups.push(Fixup {
            at: at.index() as usize,
            label,
            kind: FixKind::Target,
        });
        at
    }

    /// Emits `LoadImm rd, addr_of(label)` — materialises a code address in
    /// a register, for indirect jumps and jump tables (patched at finish).
    pub fn load_label_addr(&mut self, rd: Reg, label: LabelId) -> Addr {
        let at = self.emit(Instruction::LoadImm { rd, imm: 0 });
        self.fixups.push(Fixup {
            at: at.index() as usize,
            label,
            kind: FixKind::AddrImm,
        });
        at
    }

    /// Records a named symbol at the current position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DuplicateSymbol`] if the name already exists.
    pub fn define_symbol(&mut self, name: &str) -> Result<(), AsmError> {
        if self.symbols.contains_key(name) {
            return Err(AsmError::DuplicateSymbol { name: name.into() });
        }
        self.symbols.insert(name.to_string(), self.here());
        Ok(())
    }

    /// Resolves all fixups and produces the final [`Program`] with entry
    /// point at address 0.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] for any referenced-but-unbound
    /// label, or a validation error from [`Program::new`].
    pub fn finish(mut self) -> Result<Program, AsmError> {
        for fix in &self.fixups {
            let addr = self.labels[fix.label.0 as usize]
                .ok_or(AsmError::UnboundLabel { label: fix.label.0 })?;
            let instr = &mut self.code[fix.at];
            match (fix.kind, &mut *instr) {
                (FixKind::Target, Instruction::Branch { target, .. })
                | (FixKind::Target, Instruction::Jump { target })
                | (FixKind::Target, Instruction::Call { target, .. }) => *target = addr,
                (FixKind::AddrImm, Instruction::LoadImm { imm, .. }) => *imm = addr.index() as i64,
                _ => unreachable!("fixup recorded against incompatible instruction"),
            }
        }
        Program::new(self.code, Addr::ZERO, self.symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_isa::AluOp;

    #[test]
    fn forward_reference_resolves() {
        let mut a = Assembler::new();
        let end = a.new_label();
        a.jump(end);
        a.emit(Instruction::Nop);
        a.bind(end).unwrap();
        a.emit(Instruction::Halt);
        let p = a.finish().unwrap();
        assert_eq!(
            p.code()[0],
            Instruction::Jump {
                target: Addr::new(2)
            }
        );
    }

    #[test]
    fn backward_reference_resolves() {
        let mut a = Assembler::new();
        let top = a.label_here();
        a.emit(Instruction::Nop);
        a.branch(Cond::Ne, Reg::R1, Reg::R0, top);
        a.emit(Instruction::Halt);
        let p = a.finish().unwrap();
        match p.code()[1] {
            Instruction::Branch { target, .. } => assert_eq!(target, Addr::ZERO),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn label_addr_immediate_resolves() {
        let mut a = Assembler::new();
        let tgt = a.new_label();
        a.load_label_addr(Reg::R1, tgt);
        a.emit(Instruction::JumpInd { base: Reg::R1 });
        a.bind(tgt).unwrap();
        a.emit(Instruction::Halt);
        let p = a.finish().unwrap();
        assert_eq!(
            p.code()[0],
            Instruction::LoadImm {
                rd: Reg::R1,
                imm: 2
            }
        );
    }

    #[test]
    fn unbound_label_errors() {
        let mut a = Assembler::new();
        let never = a.new_label();
        a.jump(never);
        assert!(matches!(
            a.finish().unwrap_err(),
            AsmError::UnboundLabel { .. }
        ));
    }

    #[test]
    fn double_bind_errors() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.bind(l).unwrap();
        assert!(matches!(
            a.bind(l).unwrap_err(),
            AsmError::DoublyBoundLabel { .. }
        ));
    }

    #[test]
    fn duplicate_symbol_errors() {
        let mut a = Assembler::new();
        a.define_symbol("x").unwrap();
        assert!(matches!(
            a.define_symbol("x").unwrap_err(),
            AsmError::DuplicateSymbol { .. }
        ));
    }

    #[test]
    fn call_fixup() {
        let mut a = Assembler::new();
        let f = a.new_label();
        a.call(f, Reg::RA);
        a.emit(Instruction::Halt);
        a.bind(f).unwrap();
        a.emit(Instruction::Ret { link: Reg::RA });
        let p = a.finish().unwrap();
        assert_eq!(
            p.code()[0],
            Instruction::Call {
                target: Addr::new(2),
                link: Reg::RA
            }
        );
    }

    #[test]
    fn emit_tracks_addresses() {
        let mut a = Assembler::new();
        assert_eq!(a.here(), Addr::ZERO);
        let at = a.emit(Instruction::AluImm {
            op: AluOp::Add,
            rd: Reg::R1,
            ra: Reg::R0,
            imm: 0,
        });
        assert_eq!(at, Addr::ZERO);
        assert_eq!(a.here(), Addr::new(1));
    }
}
