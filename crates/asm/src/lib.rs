//! # loopspec-asm — assembler and structured program builder for SLA
//!
//! This crate plays the role of the *compiler* in the paper's methodology
//! (Tubella & González, HPCA 1998): it turns structured descriptions of
//! control flow — loop nests, conditionals, subroutines, recursion, early
//! exits — into flat [`loopspec_isa`] machine code that the `loopspec-cpu`
//! interpreter executes and the loop detector observes.
//!
//! Two layers are provided:
//!
//! * [`Assembler`] — a classic two-pass assembler core: emit instructions,
//!   create and bind labels, and let `finish` resolve all forward
//!   references (branch/jump/call targets and label-address immediates).
//! * [`ProgramBuilder`] — a structured layer on top: `counted_loop`,
//!   `while_loop`, `if_else`, `break`/`continue`, function definitions with
//!   a call-stack convention (so recursion works), switch dispatch through
//!   jump tables, static data allocation, and filler-work generators used
//!   to calibrate loop-body sizes.
//!
//! ## Example: a counted loop
//!
//! ```
//! use loopspec_asm::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! b.counted_loop(10, |b, _i| {
//!     b.work(3); // three filler ALU instructions
//! });
//! let program = b.finish().expect("assembles");
//! assert!(program.len() > 0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod assembler;
mod builder;
mod error;
mod program;

pub use assembler::{Assembler, LabelId};
pub use builder::{Operand, ProgramBuilder, STACK_BASE};
pub use error::AsmError;
pub use program::Program;
