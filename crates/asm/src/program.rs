//! Assembled programs.

use std::collections::BTreeMap;
use std::fmt;

use loopspec_isa::{Addr, ControlKind, Instruction};

use crate::AsmError;

/// A fully assembled SLA program: flat code, an entry point, and a symbol
/// table for named code addresses (function entries, benchmark phases).
///
/// `Program` is immutable once produced by
/// [`Assembler::finish`](crate::Assembler::finish); the CPU fetches from it
/// by [`Addr`].
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    code: Vec<Instruction>,
    entry: Addr,
    symbols: BTreeMap<String, Addr>,
}

impl Program {
    /// Builds a program from raw parts, validating all static control-flow
    /// targets.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::TargetOutOfRange`] when a branch, jump or call
    /// target lies outside the code.
    pub fn new(
        code: Vec<Instruction>,
        entry: Addr,
        symbols: BTreeMap<String, Addr>,
    ) -> Result<Self, AsmError> {
        let len = code.len() as u32;
        for (i, instr) in code.iter().enumerate() {
            let target = match instr.control_kind() {
                ControlKind::CondBranch { target }
                | ControlKind::Jump { target }
                | ControlKind::Call { target } => Some(target),
                _ => None,
            };
            if let Some(t) = target {
                if t.index() >= len {
                    return Err(AsmError::TargetOutOfRange {
                        at: i as u32,
                        target: t.index(),
                        len,
                    });
                }
            }
        }
        Ok(Program {
            code,
            entry,
            symbols,
        })
    }

    /// Fetches the instruction at `addr`, or `None` past the end of code.
    #[inline]
    pub fn fetch(&self, addr: Addr) -> Option<&Instruction> {
        self.code.get(addr.index() as usize)
    }

    /// Number of instructions (static code size).
    #[inline]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Returns `true` when the program contains no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The entry-point address.
    #[inline]
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// The full instruction slice.
    #[inline]
    pub fn code(&self) -> &[Instruction] {
        &self.code
    }

    /// Looks up a named code address.
    pub fn symbol(&self, name: &str) -> Option<Addr> {
        self.symbols.get(name).copied()
    }

    /// All symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, Addr)> + '_ {
        self.symbols.iter().map(|(n, a)| (n.as_str(), *a))
    }

    /// Produces a human-readable disassembly listing.
    ///
    /// Each line shows the address and instruction; symbol definitions are
    /// interleaved as `name:` headers.
    pub fn disassemble(&self) -> String {
        use fmt::Write as _;
        let mut by_addr: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (name, addr) in &self.symbols {
            by_addr.entry(addr.index()).or_default().push(name);
        }
        let mut out = String::new();
        for (i, instr) in self.code.iter().enumerate() {
            if let Some(names) = by_addr.get(&(i as u32)) {
                for n in names {
                    let _ = writeln!(out, "{n}:");
                }
            }
            let _ = writeln!(out, "  {:#06x}  {instr}", i);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_isa::{AluOp, Reg};

    fn tiny() -> Vec<Instruction> {
        vec![
            Instruction::AluImm {
                op: AluOp::Add,
                rd: Reg::R1,
                ra: Reg::R0,
                imm: 1,
            },
            Instruction::Jump {
                target: Addr::new(2),
            },
            Instruction::Halt,
        ]
    }

    #[test]
    fn construction_validates_targets() {
        let p = Program::new(tiny(), Addr::ZERO, BTreeMap::new()).unwrap();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.entry(), Addr::ZERO);
        assert!(p.fetch(Addr::new(2)).is_some());
        assert!(p.fetch(Addr::new(3)).is_none());
    }

    #[test]
    fn out_of_range_target_rejected() {
        let code = vec![Instruction::Jump {
            target: Addr::new(10),
        }];
        let err = Program::new(code, Addr::ZERO, BTreeMap::new()).unwrap_err();
        assert!(matches!(err, AsmError::TargetOutOfRange { target: 10, .. }));
    }

    #[test]
    fn symbols_resolve() {
        let mut syms = BTreeMap::new();
        syms.insert("main".to_string(), Addr::ZERO);
        syms.insert("end".to_string(), Addr::new(2));
        let p = Program::new(tiny(), Addr::ZERO, syms).unwrap();
        assert_eq!(p.symbol("main"), Some(Addr::ZERO));
        assert_eq!(p.symbol("nope"), None);
        assert_eq!(p.symbols().count(), 2);
    }

    #[test]
    fn disassembly_contains_symbols_and_code() {
        let mut syms = BTreeMap::new();
        syms.insert("main".to_string(), Addr::ZERO);
        let p = Program::new(tiny(), Addr::ZERO, syms).unwrap();
        let text = p.disassemble();
        assert!(text.contains("main:"));
        assert!(text.contains("halt"));
    }
}
