//! Structured program construction: loops, conditionals, functions.
//!
//! [`ProgramBuilder`] is the "compiler" used by the workload suite. It
//! lowers structured control flow onto the [`Assembler`] using fixed
//! software conventions:
//!
//! * `r0` — hardwired zero; `r1` — function return value;
//! * `r2..r5` — function arguments;
//! * `r6` — global LCG random-number state;
//! * `r8..r19` — main-program register pool ([`ProgramBuilder::alloc_reg`]);
//! * `r20..r28` — function-scratch pool (saved/restored by every function
//!   prologue/epilogue, so recursion and nested calls are safe);
//! * `r29` (`SP`) — stack pointer, grows downward from [`STACK_BASE`];
//! * `r30` (`RA`) — link register; `r31` (`AT`) — builder scratch.

use std::collections::BTreeMap;

use loopspec_isa::{Addr, AluOp, Cond, FAluOp, FReg, Instruction, Reg};

use crate::{AsmError, Assembler, LabelId, Program};

/// Initial stack-pointer value (word address). The stack grows downward.
pub const STACK_BASE: i64 = 1 << 30;

/// First word address of the static data region managed by
/// [`ProgramBuilder::alloc_static`].
pub const STATIC_BASE: i64 = 1 << 16;

/// Registers available to [`ProgramBuilder::alloc_reg`] in main code.
const MAIN_POOL: [Reg; 12] = [
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R11,
    Reg::R12,
    Reg::R13,
    Reg::R14,
    Reg::R15,
    Reg::R16,
    Reg::R17,
    Reg::R18,
    Reg::R19,
];

/// Registers available to [`ProgramBuilder::alloc_reg`] inside functions.
const FUNC_POOL: [Reg; 9] = [
    Reg::R20,
    Reg::R21,
    Reg::R22,
    Reg::R23,
    Reg::R24,
    Reg::R25,
    Reg::R26,
    Reg::R27,
    Reg::R28,
];

/// Function stack-frame size in words: RA plus the nine scratch registers.
const FRAME_WORDS: i32 = 1 + FUNC_POOL.len() as i32;

/// LCG multiplier (glibc `rand` constants, 31-bit state).
const LCG_MUL: i32 = 1_103_515_245;
/// LCG increment.
const LCG_INC: i32 = 12_345;
/// LCG state mask (31 bits).
const LCG_MASK: i32 = 0x7fff_ffff;

/// A register-or-immediate operand accepted by several builder methods.
///
/// ```
/// use loopspec_asm::Operand;
/// use loopspec_isa::Reg;
/// let a: Operand = 5i64.into();
/// let b: Operand = Reg::R8.into();
/// assert!(matches!(a, Operand::Imm(5)));
/// assert!(matches!(b, Operand::Reg(Reg::R8)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand.
    Imm(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Imm(v as i64)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v as i64)
    }
}

#[derive(Debug)]
struct LoopCtx {
    continue_label: LabelId,
    break_label: LabelId,
}

#[derive(Debug)]
struct FuncState {
    label: LabelId,
    defined: bool,
}

type FuncBody = Box<dyn FnOnce(&mut ProgramBuilder)>;

/// Structured code generator for SLA programs.
///
/// See the [crate docs](crate) for register conventions and an
/// end-to-end example.
pub struct ProgramBuilder {
    asm: Assembler,
    main_free: Vec<Reg>,
    func_free: Vec<Reg>,
    in_function: bool,
    epilogue: Option<LabelId>,
    loops: Vec<LoopCtx>,
    funcs: BTreeMap<String, FuncState>,
    pending: Vec<(String, FuncBody)>,
    static_brk: i64,
    work_counter: u32,
}

impl std::fmt::Debug for ProgramBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramBuilder")
            .field("code_len", &self.asm.here().index())
            .field("in_function", &self.in_function)
            .field("open_loops", &self.loops.len())
            .field("pending_funcs", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates a builder with the standard startup sequence (stack pointer
    /// and RNG-state initialisation) already emitted.
    pub fn new() -> Self {
        Self::with_seed(0x1234_5678)
    }

    /// Creates a builder whose global LCG register is seeded with `seed`.
    pub fn with_seed(seed: i64) -> Self {
        let mut b = ProgramBuilder {
            asm: Assembler::new(),
            main_free: MAIN_POOL.iter().rev().copied().collect(),
            func_free: Vec::new(),
            in_function: false,
            epilogue: None,
            loops: Vec::new(),
            funcs: BTreeMap::new(),
            pending: Vec::new(),
            static_brk: STATIC_BASE,
            work_counter: 0,
        };
        b.asm
            .define_symbol("main")
            .expect("fresh assembler has no symbols");
        b.li(Reg::SP, STACK_BASE);
        b.li(Reg::R6, seed & LCG_MASK as i64);
        b
    }

    // ----------------------------------------------------------------
    // Raw emission and sugar
    // ----------------------------------------------------------------

    /// Gives direct access to the underlying assembler.
    pub fn asm(&mut self) -> &mut Assembler {
        &mut self.asm
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instruction) -> Addr {
        self.asm.emit(i)
    }

    /// `rd <- imm` (any 48-bit immediate).
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.emit(Instruction::LoadImm { rd, imm });
    }

    /// `rd <- rs` (register move via `or rd, rs, r0`).
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instruction::Alu {
            op: AluOp::Or,
            rd,
            ra: rs,
            rb: Reg::ZERO,
        });
    }

    /// `rd <- op(ra, rb)`.
    pub fn op(&mut self, op: AluOp, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Instruction::Alu { op, rd, ra, rb });
    }

    /// `rd <- op(ra, imm)`.
    pub fn op_imm(&mut self, op: AluOp, rd: Reg, ra: Reg, imm: i32) {
        self.emit(Instruction::AluImm { op, rd, ra, imm });
    }

    /// `rd <- ra + imm`.
    pub fn addi(&mut self, rd: Reg, ra: Reg, imm: i32) {
        self.op_imm(AluOp::Add, rd, ra, imm);
    }

    // ----------------------------------------------------------------
    // Register pool
    // ----------------------------------------------------------------

    /// Allocates a register from the active pool (main or function
    /// scratch).
    ///
    /// # Panics
    ///
    /// Panics when the pool is exhausted; this indicates a builder-usage
    /// bug (too many live temporaries), not a runtime condition.
    pub fn alloc_reg(&mut self) -> Reg {
        let pool = if self.in_function {
            &mut self.func_free
        } else {
            &mut self.main_free
        };
        pool.pop().expect("register pool exhausted")
    }

    /// Returns a register to the active pool.
    pub fn free_reg(&mut self, r: Reg) {
        let pool = if self.in_function {
            &mut self.func_free
        } else {
            &mut self.main_free
        };
        debug_assert!(!pool.contains(&r), "double free of {r}");
        pool.push(r);
    }

    /// How many registers the active pool (main or function scratch)
    /// still has free — the headroom compilers building on top of this
    /// builder (the `loopspec-gen` lowering pass) consult before
    /// choosing between register-resident and memory-resident loop
    /// counters.
    pub fn free_regs(&self) -> usize {
        if self.in_function {
            self.func_free.len()
        } else {
            self.main_free.len()
        }
    }

    /// Allocates a register, runs `f` with it, then frees it.
    pub fn with_reg<T>(&mut self, f: impl FnOnce(&mut Self, Reg) -> T) -> T {
        let r = self.alloc_reg();
        let out = f(self, r);
        self.free_reg(r);
        out
    }

    fn materialize(&mut self, v: Operand) -> (Reg, bool) {
        match v {
            Operand::Reg(r) => (r, false),
            Operand::Imm(i) => {
                let r = self.alloc_reg();
                self.li(r, i);
                (r, true)
            }
        }
    }

    // ----------------------------------------------------------------
    // Loops
    // ----------------------------------------------------------------

    /// Emits a canonical counted loop executing `count` iterations
    /// (zero-trip guarded). The body receives the induction register,
    /// which counts `0, 1, …, count-1`.
    ///
    /// Shape (`do_while` with guard — the closing instruction is a
    /// *backward conditional branch*, the paper's archetypal loop):
    ///
    /// ```text
    ///       li   i, 0
    ///       b.ge i, n, exit      ; zero-trip guard (forward)
    /// top:  <body>
    /// cont: addi i, i, 1
    ///       b.lt i, n, top       ; closing backward branch
    /// exit:
    /// ```
    pub fn counted_loop(&mut self, count: impl Into<Operand>, body: impl FnOnce(&mut Self, Reg)) {
        let (n, owned) = self.materialize(count.into());
        let i = self.alloc_reg();
        self.li(i, 0);
        self.loop_from_reg(i, n, body);
        self.free_reg(i);
        if owned {
            self.free_reg(n);
        }
    }

    /// Like [`ProgramBuilder::counted_loop`] but the induction register
    /// `i` (already initialised by the caller) runs up to the bound
    /// register `n` by `+1` steps.
    pub fn loop_from_reg(&mut self, i: Reg, n: Reg, body: impl FnOnce(&mut Self, Reg)) {
        let top = self.asm.new_label();
        let cont = self.asm.new_label();
        let exit = self.asm.new_label();
        self.asm.branch(Cond::GeS, i, n, exit);
        self.asm.bind(top).expect("fresh label");
        self.loops.push(LoopCtx {
            continue_label: cont,
            break_label: exit,
        });
        body(self, i);
        self.loops.pop();
        self.asm.bind(cont).expect("fresh label");
        self.addi(i, i, 1);
        self.asm.branch(Cond::LtS, i, n, top);
        self.asm.bind(exit).expect("fresh label");
    }

    /// Emits a head-tested `while` loop. `cond` emits code computing the
    /// *continue* condition and returns `(cond, ra, rb)`; the loop runs
    /// while it holds.
    ///
    /// Shape (the closing instruction is a *backward jump*, the paper's
    /// other loop archetype):
    ///
    /// ```text
    /// top:  <cond code>
    ///       b.!cond exit         ; forward exit
    ///       <body>
    ///       j top                ; closing backward jump
    /// exit:
    /// ```
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> (Cond, Reg, Reg),
        body: impl FnOnce(&mut Self),
    ) {
        let top = self.asm.label_here();
        let exit = self.asm.new_label();
        let (c, ra, rb) = cond(self);
        self.asm.branch(c.negate(), ra, rb, exit);
        self.loops.push(LoopCtx {
            continue_label: top,
            break_label: exit,
        });
        body(self);
        self.loops.pop();
        self.asm.jump(top);
        self.asm.bind(exit).expect("fresh label");
    }

    /// Emits a tail-tested `do … while` loop (runs at least once). `cond`
    /// emits the continue-condition code after the body.
    pub fn do_while(
        &mut self,
        body: impl FnOnce(&mut Self),
        cond: impl FnOnce(&mut Self) -> (Cond, Reg, Reg),
    ) {
        let top = self.asm.label_here();
        let cont = self.asm.new_label();
        let exit = self.asm.new_label();
        self.loops.push(LoopCtx {
            continue_label: cont,
            break_label: exit,
        });
        body(self);
        self.loops.pop();
        self.asm.bind(cont).expect("fresh label");
        let (c, ra, rb) = cond(self);
        self.asm.branch(c, ra, rb, top);
        self.asm.bind(exit).expect("fresh label");
    }

    /// Emits an infinite loop; the body must [`ProgramBuilder::break_loop`]
    /// (or return from the enclosing function) to terminate.
    pub fn loop_forever(&mut self, body: impl FnOnce(&mut Self)) {
        let top = self.asm.label_here();
        let exit = self.asm.new_label();
        self.loops.push(LoopCtx {
            continue_label: top,
            break_label: exit,
        });
        body(self);
        self.loops.pop();
        self.asm.jump(top);
        self.asm.bind(exit).expect("fresh label");
    }

    fn innermost_loop(&self) -> &LoopCtx {
        self.loops.last().expect("not inside a loop")
    }

    /// Unconditionally exits the innermost loop.
    ///
    /// # Panics
    ///
    /// Panics if not inside a loop.
    pub fn break_loop(&mut self) {
        let l = self.innermost_loop().break_label;
        self.asm.jump(l);
    }

    /// Exits the innermost loop when `cond(ra, rb)` holds.
    ///
    /// # Panics
    ///
    /// Panics if not inside a loop.
    pub fn break_if(&mut self, cond: Cond, ra: Reg, rb: Reg) {
        let l = self.innermost_loop().break_label;
        self.asm.branch(cond, ra, rb, l);
    }

    /// Jumps to the innermost loop's continue point.
    ///
    /// # Panics
    ///
    /// Panics if not inside a loop.
    pub fn continue_loop(&mut self) {
        let l = self.innermost_loop().continue_label;
        self.asm.jump(l);
    }

    /// Continues the innermost loop when `cond(ra, rb)` holds.
    ///
    /// # Panics
    ///
    /// Panics if not inside a loop.
    pub fn continue_if(&mut self, cond: Cond, ra: Reg, rb: Reg) {
        let l = self.innermost_loop().continue_label;
        self.asm.branch(cond, ra, rb, l);
    }

    // ----------------------------------------------------------------
    // Conditionals
    // ----------------------------------------------------------------

    /// Emits `if cond(ra, rb) { then_f } else { else_f }`.
    pub fn if_else(
        &mut self,
        cond: Cond,
        ra: Reg,
        rb: Reg,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        let else_l = self.asm.new_label();
        let end = self.asm.new_label();
        self.asm.branch(cond.negate(), ra, rb, else_l);
        then_f(self);
        self.asm.jump(end);
        self.asm.bind(else_l).expect("fresh label");
        else_f(self);
        self.asm.bind(end).expect("fresh label");
    }

    /// Emits `if cond(ra, rb) { then_f }`.
    pub fn if_then(&mut self, cond: Cond, ra: Reg, rb: Reg, then_f: impl FnOnce(&mut Self)) {
        let end = self.asm.new_label();
        self.asm.branch(cond.negate(), ra, rb, end);
        then_f(self);
        self.asm.bind(end).expect("fresh label");
    }

    /// Emits an N-way dispatch through a jump table: `arm(b, k)` generates
    /// the code of arm `k`. `idx` must be in `[0, n)` at run time (the
    /// builder does not emit a bounds check).
    ///
    /// Lowered as an indirect jump into a table of `j armK` trampolines —
    /// the classic `switch` shape that exercises
    /// [`loopspec_isa::ControlKind::IndirectJump`].
    pub fn switch_table(&mut self, idx: Reg, n: usize, mut arm: impl FnMut(&mut Self, usize)) {
        assert!(n > 0, "switch_table needs at least one arm");
        let table = self.asm.new_label();
        let end = self.asm.new_label();
        let arm_labels: Vec<LabelId> = (0..n).map(|_| self.asm.new_label()).collect();
        self.asm.load_label_addr(Reg::AT, table);
        self.op(AluOp::Add, Reg::AT, Reg::AT, idx);
        self.emit(Instruction::JumpInd { base: Reg::AT });
        self.asm.bind(table).expect("fresh label");
        for &l in &arm_labels {
            self.asm.jump(l);
        }
        for (k, &l) in arm_labels.iter().enumerate() {
            self.asm.bind(l).expect("fresh label");
            arm(self, k);
            self.asm.jump(end);
        }
        self.asm.bind(end).expect("fresh label");
    }

    // ----------------------------------------------------------------
    // Functions
    // ----------------------------------------------------------------

    /// Argument registers of the calling convention (`r2..r5`).
    pub const ARG_REGS: [Reg; 4] = [Reg::R2, Reg::R3, Reg::R4, Reg::R5];

    /// Return-value register of the calling convention (`r1`).
    pub const RET_REG: Reg = Reg::R1;

    fn func_label(&mut self, name: &str) -> LabelId {
        if let Some(st) = self.funcs.get(name) {
            return st.label;
        }
        let label = self.asm.new_label();
        self.funcs.insert(
            name.to_string(),
            FuncState {
                label,
                defined: false,
            },
        );
        label
    }

    /// Defines a function body; the code is emitted after the main program
    /// during [`ProgramBuilder::finish`]. Inside the body the register
    /// pool switches to the function-scratch set, all of which the
    /// prologue saves, so functions (including recursive ones) may call
    /// anything.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already defined.
    pub fn define_func(&mut self, name: &str, body: impl FnOnce(&mut Self) + 'static) {
        let st = self.func_label(name);
        let state = self.funcs.get_mut(name).expect("just inserted");
        assert!(!state.defined, "function `{name}` defined twice");
        state.defined = true;
        let _ = st;
        self.pending.push((name.to_string(), Box::new(body)));
    }

    /// Emits a call to a named function (definable before or after the
    /// call site). Arguments go in [`ProgramBuilder::ARG_REGS`], the result
    /// comes back in [`ProgramBuilder::RET_REG`].
    pub fn call_func(&mut self, name: &str) {
        let label = self.func_label(name);
        self.asm.call(label, Reg::RA);
    }

    /// Emits a `KernelCall` to registered kernel `id` — the
    /// native-precompiled counterpart of
    /// [`ProgramBuilder::call_func`]. The same calling convention
    /// applies: arguments go in [`ProgramBuilder::ARG_REGS`], the
    /// result comes back in [`ProgramBuilder::RET_REG`], and the
    /// kernel clobbers only `r1`–`r5`, `r7` and `r31` (see
    /// [`loopspec_isa::kernel`] for the registry and ABI).
    pub fn kernel_call(&mut self, id: u32) {
        self.emit(Instruction::KernelCall { id });
    }

    /// Loads the entry address of function `name` into `rd` — the
    /// building block for function-pointer tables. The function may be
    /// defined before or after this point; an address taken of a
    /// function that is never defined fails [`ProgramBuilder::finish`].
    pub fn func_addr(&mut self, rd: Reg, name: &str) {
        let label = self.func_label(name);
        self.asm.load_label_addr(rd, label);
    }

    /// Emits an indirect call through `target` (a register holding a
    /// function entry address, e.g. one produced by
    /// [`ProgramBuilder::func_addr`] or loaded from a function-pointer
    /// table). Uses the same `RA` linkage as [`ProgramBuilder::call_func`],
    /// so the callee's prologue/epilogue work unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `target` is `RA` (the link write would race the read).
    pub fn call_reg(&mut self, target: Reg) {
        assert_ne!(target, Reg::RA, "indirect-call target must not be RA");
        self.emit(Instruction::CallInd {
            base: target,
            link: Reg::RA,
        });
    }

    /// Sets argument `k` of an upcoming call.
    ///
    /// # Panics
    ///
    /// Panics if `k >= 4`.
    pub fn set_arg(&mut self, k: usize, v: impl Into<Operand>) {
        let dst = Self::ARG_REGS[k];
        match v.into() {
            Operand::Reg(r) => self.mov(dst, r),
            Operand::Imm(i) => self.li(dst, i),
        }
    }

    /// Moves `v` into the return-value register.
    pub fn set_ret(&mut self, v: impl Into<Operand>) {
        match v.into() {
            Operand::Reg(r) => self.mov(Self::RET_REG, r),
            Operand::Imm(i) => self.li(Self::RET_REG, i),
        }
    }

    /// Returns early from the current function (jumps to the epilogue).
    ///
    /// # Panics
    ///
    /// Panics if not inside a function body.
    pub fn ret_fn(&mut self) {
        let ep = self.epilogue.expect("ret_fn outside function body");
        self.asm.jump(ep);
    }

    fn emit_prologue(&mut self) {
        self.addi(Reg::SP, Reg::SP, -FRAME_WORDS);
        self.emit(Instruction::Store {
            src: Reg::RA,
            base: Reg::SP,
            offset: 0,
        });
        for (k, r) in FUNC_POOL.iter().enumerate() {
            self.emit(Instruction::Store {
                src: *r,
                base: Reg::SP,
                offset: 1 + k as i32,
            });
        }
    }

    fn emit_epilogue(&mut self) {
        self.emit(Instruction::Load {
            rd: Reg::RA,
            base: Reg::SP,
            offset: 0,
        });
        for (k, r) in FUNC_POOL.iter().enumerate() {
            self.emit(Instruction::Load {
                rd: *r,
                base: Reg::SP,
                offset: 1 + k as i32,
            });
        }
        self.addi(Reg::SP, Reg::SP, FRAME_WORDS);
        self.emit(Instruction::Ret { link: Reg::RA });
    }

    // ----------------------------------------------------------------
    // Data and filler work
    // ----------------------------------------------------------------

    /// Reserves `words` words of static data and returns the base address.
    pub fn alloc_static(&mut self, words: i64) -> i64 {
        let base = self.static_brk;
        self.static_brk += words;
        base
    }

    /// `rd <- mem[addr]` for a static address.
    pub fn load_static(&mut self, rd: Reg, addr: i64) {
        self.li(Reg::AT, addr);
        self.emit(Instruction::Load {
            rd,
            base: Reg::AT,
            offset: 0,
        });
    }

    /// `mem[addr] <- src` for a static address.
    pub fn store_static(&mut self, src: Reg, addr: i64) {
        assert_ne!(src, Reg::AT, "AT is clobbered by store_static");
        self.li(Reg::AT, addr);
        self.emit(Instruction::Store {
            src,
            base: Reg::AT,
            offset: 0,
        });
    }

    /// `rd <- mem[base + idx]` — array element load.
    pub fn load_idx(&mut self, rd: Reg, base: i64, idx: Reg) {
        assert_ne!(idx, Reg::AT, "AT is clobbered by load_idx");
        self.li(Reg::AT, base);
        self.op(AluOp::Add, Reg::AT, Reg::AT, idx);
        self.emit(Instruction::Load {
            rd,
            base: Reg::AT,
            offset: 0,
        });
    }

    /// `mem[base + idx] <- src` — array element store.
    pub fn store_idx(&mut self, src: Reg, base: i64, idx: Reg) {
        assert_ne!(src, Reg::AT, "AT is clobbered by store_idx");
        assert_ne!(idx, Reg::AT, "AT is clobbered by store_idx");
        self.li(Reg::AT, base);
        self.op(AluOp::Add, Reg::AT, Reg::AT, idx);
        self.emit(Instruction::Store {
            src,
            base: Reg::AT,
            offset: 0,
        });
    }

    /// `rd <- mem[base + offset]` — register-indirect load through a
    /// pointer register (pointer chasing, stack slots). Unlike
    /// [`ProgramBuilder::load_static`] this never touches `AT`, so it is
    /// safe while `AT` holds live builder state.
    pub fn load_at(&mut self, rd: Reg, base: Reg, offset: i32) {
        self.emit(Instruction::Load { rd, base, offset });
    }

    /// `mem[base + offset] <- src` — register-indirect store through a
    /// pointer register. Never touches `AT`.
    pub fn store_at(&mut self, src: Reg, base: Reg, offset: i32) {
        self.emit(Instruction::Store { src, base, offset });
    }

    /// Emits `n` filler integer ALU instructions (a fresh constant load
    /// into the scratch accumulator followed by a deterministic mix of
    /// add/xor/shift). Used to pad loop bodies to a target size. The
    /// leading write means the scratch register is *not* live-in to
    /// enclosing loop iterations — filler models freshly computed
    /// temporaries, not loop-carried state.
    pub fn work(&mut self, n: u32) {
        for step in 0..n {
            let k = self.work_counter;
            self.work_counter = self.work_counter.wrapping_add(1);
            if step == 0 {
                self.emit(Instruction::LoadImm {
                    rd: Reg::AT,
                    imm: (k % 251) as i64,
                });
                continue;
            }
            let i = match k % 4 {
                0 => Instruction::AluImm {
                    op: AluOp::Add,
                    rd: Reg::AT,
                    ra: Reg::AT,
                    imm: (k % 97) as i32 + 1,
                },
                1 => Instruction::AluImm {
                    op: AluOp::Xor,
                    rd: Reg::AT,
                    ra: Reg::AT,
                    imm: 0x5a5a,
                },
                2 => Instruction::AluImm {
                    op: AluOp::Shl,
                    rd: Reg::AT,
                    ra: Reg::AT,
                    imm: 1,
                },
                _ => Instruction::AluImm {
                    op: AluOp::Shr,
                    rd: Reg::AT,
                    ra: Reg::AT,
                    imm: 1,
                },
            };
            self.emit(i);
        }
    }

    /// Emits `n` filler floating-point instructions on `f0`/`f1` —
    /// FP-heavy loop bodies for the numeric workloads.
    pub fn fwork(&mut self, n: u32) {
        for k in 0..n {
            let op = FAluOp::ALL[(k as usize) % 4];
            self.emit(Instruction::FAlu {
                op,
                fd: FReg::F0,
                fa: FReg::F0,
                fb: FReg::F1,
            });
        }
    }

    // ----------------------------------------------------------------
    // Pseudo-random numbers (guest-side LCG)
    // ----------------------------------------------------------------

    /// Advances an LCG whose state lives in `state` (31-bit state):
    /// `state = (state * 1103515245 + 12345) & 0x7fffffff`.
    pub fn lcg_next(&mut self, state: Reg) {
        self.op_imm(AluOp::Mul, state, state, LCG_MUL);
        self.op_imm(AluOp::Add, state, state, LCG_INC);
        self.op_imm(AluOp::And, state, state, LCG_MASK);
    }

    /// Advances the *global* RNG register (`r6`) and writes
    /// `rd <- r6 % modulo`.
    pub fn rng_below(&mut self, rd: Reg, modulo: i32) {
        assert!(modulo > 0, "modulo must be positive");
        self.lcg_next(Reg::R6);
        self.op_imm(AluOp::Rem, rd, Reg::R6, modulo);
    }

    // ----------------------------------------------------------------
    // Finish
    // ----------------------------------------------------------------

    /// Terminates the main program with `halt`, emits all pending function
    /// bodies (with prologue/epilogue), resolves labels and returns the
    /// assembled [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedFunction`] if a called function was
    /// never defined, or any label/validation error from the assembler.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        self.emit(Instruction::Halt);
        while let Some((name, body)) = self.pending.pop() {
            let label = self.funcs[&name].label;
            self.asm.bind(label)?;
            self.asm.define_symbol(&name)?;
            self.in_function = true;
            self.func_free = FUNC_POOL.iter().rev().copied().collect();
            let ep = self.asm.new_label();
            self.epilogue = Some(ep);
            self.emit_prologue();
            body(&mut self);
            self.asm.bind(ep)?;
            self.emit_epilogue();
            self.in_function = false;
            self.epilogue = None;
        }
        for (name, st) in &self.funcs {
            if !st.defined {
                return Err(AsmError::UndefinedFunction { name: name.clone() });
            }
        }
        self.asm.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_isa::ControlKind;

    fn backward_branches(p: &Program) -> usize {
        p.code()
            .iter()
            .enumerate()
            .filter(|(i, instr)| match instr.control_kind() {
                ControlKind::CondBranch { target } | ControlKind::Jump { target } => {
                    target.index() <= *i as u32
                }
                _ => false,
            })
            .count()
    }

    #[test]
    fn counted_loop_has_backward_closing_branch() {
        let mut b = ProgramBuilder::new();
        b.counted_loop(5, |b, _i| b.work(2));
        let p = b.finish().unwrap();
        assert_eq!(backward_branches(&p), 1);
    }

    #[test]
    fn nested_loops_have_two_backward_branches() {
        let mut b = ProgramBuilder::new();
        b.counted_loop(5, |b, _| {
            b.counted_loop(3, |b, _| b.work(1));
        });
        let p = b.finish().unwrap();
        assert_eq!(backward_branches(&p), 2);
    }

    #[test]
    fn while_loop_closes_with_backward_jump() {
        let mut b = ProgramBuilder::new();
        let x = b.alloc_reg();
        b.li(x, 10);
        b.while_loop(
            |b| {
                b.op_imm(AluOp::Add, x, x, -1);
                (Cond::GtS, x, Reg::ZERO)
            },
            |b| b.work(1),
        );
        let p = b.finish().unwrap();
        assert_eq!(backward_branches(&p), 1);
    }

    #[test]
    fn functions_are_emitted_after_halt() {
        let mut b = ProgramBuilder::new();
        b.define_func("leaf", |b| {
            b.work(1);
        });
        b.call_func("leaf");
        let p = b.finish().unwrap();
        let main_halt = p
            .code()
            .iter()
            .position(|i| matches!(i, Instruction::Halt))
            .unwrap();
        let leaf = p.symbol("leaf").unwrap();
        assert!(leaf.index() as usize > main_halt);
        // The call must target the function entry.
        let call = p
            .code()
            .iter()
            .find_map(|i| match i {
                Instruction::Call { target, .. } => Some(*target),
                _ => None,
            })
            .unwrap();
        assert_eq!(call, leaf);
    }

    #[test]
    fn undefined_function_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.call_func("ghost");
        assert!(matches!(
            b.finish().unwrap_err(),
            AsmError::UndefinedFunction { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn double_definition_panics() {
        let mut b = ProgramBuilder::new();
        b.define_func("f", |_| {});
        b.define_func("f", |_| {});
    }

    #[test]
    fn break_and_continue_target_loop_labels() {
        let mut b = ProgramBuilder::new();
        b.counted_loop(10, |b, i| {
            b.continue_if(Cond::Eq, i, Reg::ZERO);
            b.break_if(Cond::GtS, i, Reg::ZERO);
            b.work(1);
        });
        let p = b.finish().unwrap();
        // Forward branches exist besides the closing one.
        assert!(p.len() > 8);
    }

    #[test]
    fn switch_table_emits_indirect_jump_and_trampolines() {
        let mut b = ProgramBuilder::new();
        let idx = b.alloc_reg();
        b.li(idx, 2);
        b.switch_table(idx, 3, |b, k| b.work(k as u32 + 1));
        let p = b.finish().unwrap();
        let indirect = p
            .code()
            .iter()
            .filter(|i| matches!(i.control_kind(), ControlKind::IndirectJump))
            .count();
        assert_eq!(indirect, 1);
        // Three trampoline jumps + three arm-exit jumps.
        let jumps = p
            .code()
            .iter()
            .filter(|i| matches!(i.control_kind(), ControlKind::Jump { .. }))
            .count();
        assert!(jumps >= 6);
    }

    #[test]
    fn register_pool_is_scoped_and_recycled() {
        let mut b = ProgramBuilder::new();
        let r1 = b.alloc_reg();
        b.free_reg(r1);
        let r2 = b.alloc_reg();
        assert_eq!(r1, r2);
        b.with_reg(|b, r| {
            assert_ne!(r, r2);
            b.li(r, 1);
        });
        b.free_reg(r2);
    }

    #[test]
    #[should_panic(expected = "register pool exhausted")]
    fn pool_exhaustion_panics() {
        let mut b = ProgramBuilder::new();
        for _ in 0..13 {
            let _ = b.alloc_reg();
        }
    }

    #[test]
    fn prologue_epilogue_balance() {
        let mut b = ProgramBuilder::new();
        b.define_func("f", |b| b.work(1));
        b.call_func("f");
        let p = b.finish().unwrap();
        let stores = p
            .code()
            .iter()
            .filter(|i| matches!(i, Instruction::Store { .. }))
            .count();
        let loads = p
            .code()
            .iter()
            .filter(|i| matches!(i, Instruction::Load { .. }))
            .count();
        assert_eq!(stores, loads);
        assert_eq!(stores, FRAME_WORDS as usize);
    }

    #[test]
    fn free_regs_tracks_the_active_pool() {
        let mut b = ProgramBuilder::new();
        let full = b.free_regs();
        let r = b.alloc_reg();
        assert_eq!(b.free_regs(), full - 1);
        b.free_reg(r);
        assert_eq!(b.free_regs(), full);
    }

    #[test]
    fn indirect_call_through_func_addr() {
        let mut b = ProgramBuilder::new();
        b.define_func("leaf", |b| b.work(1));
        let r = b.alloc_reg();
        b.func_addr(r, "leaf");
        b.call_reg(r);
        b.free_reg(r);
        let p = b.finish().unwrap();
        let leaf = p.symbol("leaf").unwrap();
        let indirect = p
            .code()
            .iter()
            .filter(|i| matches!(i.control_kind(), ControlKind::IndirectCall))
            .count();
        assert_eq!(indirect, 1);
        // The address materialized for the call is the function entry.
        let loaded = p
            .code()
            .iter()
            .find_map(|i| match i {
                Instruction::LoadImm { imm, .. } if *imm == leaf.index() as i64 => Some(*imm),
                _ => None,
            })
            .is_some();
        assert!(loaded, "func_addr must materialize the entry address");
    }

    #[test]
    fn indirect_addressing_never_touches_at() {
        let mut b = ProgramBuilder::new();
        let p = b.alloc_reg();
        b.li(p, STATIC_BASE);
        b.load_at(p, p, 3);
        b.store_at(p, p, -1);
        b.free_reg(p);
        let prog = b.finish().unwrap();
        let at_writes = prog
            .code()
            .iter()
            .filter(|i| {
                matches!(i, Instruction::Load { base, .. } | Instruction::Store { base, .. } if *base == Reg::AT)
            })
            .count();
        assert_eq!(at_writes, 0);
    }

    #[test]
    fn static_allocation_bumps() {
        let mut b = ProgramBuilder::new();
        let a = b.alloc_static(10);
        let c = b.alloc_static(4);
        assert_eq!(a, STATIC_BASE);
        assert_eq!(c, STATIC_BASE + 10);
    }
}
