//! Assembly errors.

use std::fmt;

/// Error produced while assembling a program.
///
/// Returned by [`Assembler::finish`](crate::Assembler::finish) and
/// [`ProgramBuilder::finish`](crate::ProgramBuilder::finish).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound to an address.
    UnboundLabel {
        /// Index of the offending label.
        label: u32,
    },
    /// A label was bound twice.
    DoublyBoundLabel {
        /// Index of the offending label.
        label: u32,
    },
    /// A symbol name was defined twice.
    DuplicateSymbol {
        /// The duplicated name.
        name: String,
    },
    /// A function was called but never defined with a body.
    UndefinedFunction {
        /// The function name.
        name: String,
    },
    /// A control-transfer target lies outside the assembled code.
    TargetOutOfRange {
        /// Address of the offending instruction.
        at: u32,
        /// The out-of-range target.
        target: u32,
        /// Code length.
        len: u32,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label } => {
                write!(f, "label L{label} referenced but never bound")
            }
            AsmError::DoublyBoundLabel { label } => write!(f, "label L{label} bound twice"),
            AsmError::DuplicateSymbol { name } => write!(f, "symbol `{name}` defined twice"),
            AsmError::UndefinedFunction { name } => {
                write!(f, "function `{name}` called but never defined")
            }
            AsmError::TargetOutOfRange { at, target, len } => write!(
                f,
                "instruction at {at} targets {target}, outside code of length {len}"
            ),
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            AsmError::UnboundLabel { label: 3 }.to_string(),
            "label L3 referenced but never bound"
        );
        assert!(AsmError::DuplicateSymbol {
            name: "main".into()
        }
        .to_string()
        .contains("main"));
        assert!(AsmError::TargetOutOfRange {
            at: 1,
            target: 99,
            len: 10
        }
        .to_string()
        .contains("99"));
    }
}
